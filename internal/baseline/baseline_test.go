package baseline

import (
	"math"
	"testing"

	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/synonym"
	"github.com/aujoin/aujoin/internal/taxonomy"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func testTaxonomy() *taxonomy.Tree {
	tax := taxonomy.NewTree("root")
	food := tax.MustAddChild(tax.Root(), "food")
	coffee := tax.MustAddChild(food, "coffee")
	drinks := tax.MustAddChild(coffee, "coffee drinks")
	tax.MustAddChild(drinks, "espresso")
	tax.MustAddChild(drinks, "latte")
	cake := tax.MustAddChild(food, "cake")
	tax.MustAddChild(cake, "apple cake")
	return tax
}

func testRules() *synonym.RuleSet {
	rules := synonym.NewRuleSet()
	rules.MustAdd("coffee shop", "cafe", 1)
	rules.MustAdd("db", "database", 1)
	rules.MustAdd("cake", "gateau", 1)
	return rules
}

func pairSet(pairs []Pair) map[[2]int]bool {
	m := map[[2]int]bool{}
	for _, p := range pairs {
		m[[2]int{p.S, p.T}] = true
	}
	return m
}

func TestPrefixLength(t *testing.T) {
	tests := []struct {
		n     int
		theta float64
		want  int
	}{
		{0, 0.8, 0},
		{10, 0.8, 3},
		{10, 0.95, 1},
		{10, 0.0, 10},
		{1, 0.9, 1},
	}
	for _, tt := range tests {
		if got := prefixLength(tt.n, tt.theta); got != tt.want {
			t.Errorf("prefixLength(%d, %v) = %d, want %d", tt.n, tt.theta, got, tt.want)
		}
	}
}

func TestAdaptJoinFindsTypos(t *testing.T) {
	a := &AdaptJoin{}
	s := strutil.NewCollection([]string{"helsinki city center", "espresso bar", "database systems"})
	u := strutil.NewCollection([]string{"helsingki city center", "dataabse systems", "unrelated"})
	pairs := a.Join(s, u, 0.6)
	got := pairSet(pairs)
	if !got[[2]int{0, 0}] {
		t.Error("typo pair (helsinki, helsingki) missing")
	}
	if !got[[2]int{2, 1}] {
		t.Error("typo pair (database systems, dataabse systems) missing")
	}
	for _, p := range pairs {
		if p.Similarity < 0.6 || p.Similarity > 1 {
			t.Errorf("similarity out of range: %+v", p)
		}
	}
	if a.Name() != "AdaptJoin" {
		t.Error("name")
	}
}

func TestAdaptJoinCannotSeeSemantics(t *testing.T) {
	a := &AdaptJoin{}
	s := strutil.NewCollection([]string{"coffee shop"})
	u := strutil.NewCollection([]string{"cafe"})
	pairs := a.Join(s, u, 0.7)
	if len(pairs) != 0 {
		t.Errorf("gram-based baseline should not match synonym-only pair, got %v", pairs)
	}
}

func TestKJoinSimilarityAndJoin(t *testing.T) {
	k := NewKJoin(testTaxonomy())
	if k.Name() != "K-Join" {
		t.Error("name")
	}
	// latte vs espresso relate through "coffee drinks": 4/5.
	got := k.Similarity([]string{"latte"}, []string{"espresso"})
	if !approxEq(got, 0.8) {
		t.Errorf("Similarity(latte, espresso) = %v, want 0.8", got)
	}
	// Mixed record: shared token "helsinki" plus related entities.
	got = k.Similarity(strutil.Tokenize("latte helsinki"), strutil.Tokenize("espresso helsinki"))
	if !approxEq(got, (0.8+1)/2) {
		t.Errorf("Similarity = %v, want 0.9", got)
	}
	// Entirely unrelated tokens score 0.
	if got := k.Similarity([]string{"xyz"}, []string{"abc"}); got != 0 {
		t.Errorf("unrelated = %v, want 0", got)
	}
	if got := k.Similarity(nil, nil); got != 1 {
		t.Errorf("empty-empty = %v, want 1", got)
	}
	if got := k.Similarity([]string{"a"}, nil); got != 0 {
		t.Errorf("empty one side = %v, want 0", got)
	}

	s := strutil.NewCollection([]string{"latte helsinki", "apple cake bakery", "plain words"})
	u := strutil.NewCollection([]string{"espresso helsinki", "cake bakery", "other words"})
	pairs := k.Join(s, u, 0.75)
	got2 := pairSet(pairs)
	if !got2[[2]int{0, 0}] {
		t.Errorf("taxonomy pair missing from K-Join results %v", pairs)
	}
}

func TestKJoinWithoutTaxonomy(t *testing.T) {
	k := &KJoin{}
	got := k.Similarity([]string{"same", "words"}, []string{"same", "words"})
	if !approxEq(got, 1) {
		t.Errorf("token-equality similarity = %v, want 1", got)
	}
	s := strutil.NewCollection([]string{"same words"})
	u := strutil.NewCollection([]string{"same words"})
	if pairs := k.Join(s, u, 0.9); len(pairs) != 1 {
		t.Errorf("expected 1 pair, got %v", pairs)
	}
}

func TestPKDuckSimilarityAndJoin(t *testing.T) {
	p := NewPKDuck(testRules())
	if p.Name() != "PKduck" {
		t.Error("name")
	}
	// "coffee shop" rewrites to "cafe" → Jaccard 1.
	got := p.Similarity(strutil.Tokenize("coffee shop"), strutil.Tokenize("cafe"))
	if !approxEq(got, 1) {
		t.Errorf("Similarity(coffee shop, cafe) = %v, want 1", got)
	}
	// Partial rewrite inside a longer record.
	got = p.Similarity(strutil.Tokenize("best coffee shop downtown"), strutil.Tokenize("best cafe downtown"))
	if !approxEq(got, 1) {
		t.Errorf("Similarity with context = %v, want 1", got)
	}
	// Without an applicable rule the similarity is plain token Jaccard.
	got = p.Similarity(strutil.Tokenize("alpha beta"), strutil.Tokenize("alpha gamma"))
	if !approxEq(got, 1.0/3.0) {
		t.Errorf("token Jaccard = %v, want 1/3", got)
	}

	s := strutil.NewCollection([]string{"coffee shop downtown", "db lecture notes", "unrelated stuff"})
	u := strutil.NewCollection([]string{"cafe downtown", "database lecture notes", "different things"})
	pairs := p.Join(s, u, 0.9)
	got2 := pairSet(pairs)
	if !got2[[2]int{0, 0}] || !got2[[2]int{1, 1}] {
		t.Errorf("synonym pairs missing from PKduck results %v", pairs)
	}
	if got2[[2]int{2, 2}] {
		t.Error("unrelated pair should not match")
	}
}

func TestPKDuckWithoutRules(t *testing.T) {
	p := &PKDuck{}
	got := p.Similarity([]string{"a", "b"}, []string{"a", "b"})
	if !approxEq(got, 1) {
		t.Errorf("similarity = %v, want 1", got)
	}
	if got := p.Similarity(nil, nil); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
}

func TestCombinationUnionsResults(t *testing.T) {
	tax := testTaxonomy()
	rules := testRules()
	comb := NewCombination(&AdaptJoin{}, NewKJoin(tax), NewPKDuck(rules))
	if comb.Name() != "Combination" {
		t.Error("name")
	}
	s := strutil.NewCollection([]string{
		"helsinki city",        // typo pair
		"latte helsinki",       // taxonomy pair
		"coffee shop downtown", // synonym pair
	})
	u := strutil.NewCollection([]string{
		"helsingki city",
		"espresso helsinki",
		"cafe downtown",
	})
	pairs := comb.Join(s, u, 0.66)
	got := pairSet(pairs)
	for _, want := range [][2]int{{0, 0}, {1, 1}, {2, 2}} {
		if !got[want] {
			t.Errorf("Combination missing pair %v (got %v)", want, pairs)
		}
	}
	// Every individual algorithm finds at most as many pairs.
	for _, alg := range comb.Algorithms {
		if n := len(alg.Join(s, u, 0.66)); n > len(pairs) {
			t.Errorf("%s returned %d pairs, more than the combination's %d", alg.Name(), n, len(pairs))
		}
	}
}

func TestReplaceSpanAndTokenJaccard(t *testing.T) {
	out := replaceSpan([]string{"a", "b", "c"}, 1, 1, []string{"x", "y"})
	want := []string{"a", "x", "y", "c"}
	if len(out) != len(want) {
		t.Fatalf("replaceSpan = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("replaceSpan = %v, want %v", out, want)
		}
	}
	if got := tokenJaccard([]string{"a"}, nil); got != 0 {
		t.Errorf("tokenJaccard with empty = %v, want 0", got)
	}
	if got := tokenJaccard(nil, nil); got != 1 {
		t.Errorf("tokenJaccard empty-empty = %v, want 1", got)
	}
}
