package baseline

import (
	"github.com/aujoin/aujoin/internal/matching"
	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/taxonomy"
)

// KJoin is the taxonomy-aware baseline modelled after Shang et al.'s K-Join
// (TKDE 2016): record similarity is a knowledge-aware token matching where
// tokens (or multi-token spans) mapped to taxonomy entities are scored by
// the depth of their lowest common ancestor, other tokens require exact
// equality, and the matching score is normalised by the larger token count.
// Filtering uses a prefix filter over a signature consisting of the
// record's tokens plus the ancestors of every matched taxonomy entity
// (related entities always share their LCA's ancestor element).
type KJoin struct {
	Tax *taxonomy.Tree
	// MaxSpan bounds the entity span length probed during matching; zero
	// means the taxonomy's maximal entity token count.
	MaxSpan int
}

// NewKJoin builds a K-Join baseline over the given taxonomy.
func NewKJoin(tax *taxonomy.Tree) *KJoin { return &KJoin{Tax: tax} }

// Name implements Algorithm.
func (k *KJoin) Name() string { return "K-Join" }

func (k *KJoin) maxSpan() int {
	if k.MaxSpan > 0 {
		return k.MaxSpan
	}
	if k.Tax != nil {
		return k.Tax.MaxEntityTokens()
	}
	return 1
}

// Join implements Algorithm.
func (k *KJoin) Join(s, t []strutil.Record, theta float64) []Pair {
	sigS := make([][]string, len(s))
	sigT := make([][]string, len(t))
	for i, r := range s {
		sigS[i] = k.signatureElements(r.Tokens)
	}
	for i, r := range t {
		sigT[i] = k.signatureElements(r.Tokens)
	}
	freq := tokenFrequencies([][][]string{sigS, sigT})
	prefS := make([][]string, len(sigS))
	for i := range sigS {
		prefS[i] = k.prefix(sigS[i], freq, theta)
	}
	prefT := make([][]string, len(sigT))
	for i := range sigT {
		prefT[i] = k.prefix(sigT[i], freq, theta)
	}
	candidates := candidatesByPrefix(prefS, prefT)
	var out []Pair
	for _, c := range candidates {
		i, j := c[0], c[1]
		v := k.Similarity(s[i].Tokens, t[j].Tokens)
		if v >= theta {
			out = append(out, Pair{S: s[i].ID, T: t[j].ID, Similarity: v})
		}
	}
	return sortPairs(out)
}

// prefix computes the probe set of a record: the (1−θ)-fraction prefix of
// its plain tokens (ordered by ascending frequency) plus every taxonomy
// ancestor element. Entity-related pairs always share an ancestor element,
// so the knowledge-aware similarity never loses a candidate to the token
// prefix being too short.
func (k *KJoin) prefix(signature []string, freq map[string]int, theta float64) []string {
	var tokens, tax []string
	for _, e := range signature {
		if len(e) > 4 && e[:4] == "tax:" {
			tax = append(tax, e)
		} else {
			tokens = append(tokens, e)
		}
	}
	tokens = sortByFrequency(tokens, freq)
	keep := prefixLength(len(tokens), theta)
	out := append([]string(nil), tokens[:keep]...)
	return append(out, tax...)
}

// signatureElements returns the prefix-filter signature of a record: its
// distinct tokens plus the names of every taxonomy node on the ancestor
// path of every entity the record mentions.
func (k *KJoin) signatureElements(tokens []string) []string {
	seen := map[string]struct{}{}
	var out []string
	add := func(e string) {
		if _, ok := seen[e]; ok {
			return
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	for _, tok := range tokens {
		add(tok)
	}
	if k.Tax == nil {
		return out
	}
	maxSpan := k.maxSpan()
	for start := 0; start < len(tokens); start++ {
		limit := maxSpan
		if rem := len(tokens) - start; rem < limit {
			limit = rem
		}
		for length := 1; length <= limit; length++ {
			if node, ok := k.Tax.LookupTokens(tokens[start : start+length]); ok {
				for _, anc := range k.Tax.Ancestors(node) {
					add("tax:" + k.Tax.Name(anc))
				}
			}
		}
	}
	return out
}

// Similarity computes the knowledge-aware similarity of two token
// sequences: segments (greedy longest entity spans, singletons otherwise)
// are matched with maximum-weight bipartite matching where entity pairs
// score LCA-depth / max-depth and plain tokens score 1 on equality; the
// total is divided by the larger segment count.
func (k *KJoin) Similarity(a, b []string) float64 {
	segA := k.segments(a)
	segB := k.segments(b)
	if len(segA) == 0 || len(segB) == 0 {
		if len(segA) == 0 && len(segB) == 0 {
			return 1
		}
		return 0
	}
	w := make([][]float64, len(segA))
	for i, sa := range segA {
		w[i] = make([]float64, len(segB))
		for j, sb := range segB {
			w[i][j] = k.segmentSim(sa, sb)
		}
	}
	total := matching.MaxWeight(w).Total
	den := len(segA)
	if len(segB) > den {
		den = len(segB)
	}
	return total / float64(den)
}

type kSegment struct {
	text string
	node taxonomy.NodeID
	ok   bool
}

// segments splits tokens into greedy longest entity spans and singleton
// tokens.
func (k *KJoin) segments(tokens []string) []kSegment {
	var out []kSegment
	maxSpan := k.maxSpan()
	for pos := 0; pos < len(tokens); {
		bestLen := 1
		bestNode := taxonomy.InvalidNode
		found := false
		if k.Tax != nil {
			limit := maxSpan
			if rem := len(tokens) - pos; rem < limit {
				limit = rem
			}
			for length := limit; length >= 1; length-- {
				if node, ok := k.Tax.LookupTokens(tokens[pos : pos+length]); ok {
					bestLen, bestNode, found = length, node, true
					break
				}
			}
		}
		out = append(out, kSegment{
			text: strutil.JoinTokens(tokens[pos : pos+bestLen]),
			node: bestNode,
			ok:   found,
		})
		pos += bestLen
	}
	return out
}

// segmentSim scores a pair of segments: entity pairs via LCA depth, other
// pairs by exact text equality.
func (k *KJoin) segmentSim(a, b kSegment) float64 {
	if a.ok && b.ok {
		return k.Tax.Similarity(a.node, b.node)
	}
	if a.text == b.text {
		return 1
	}
	return 0
}
