package baseline

import (
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
)

// AdaptJoin is the gram-based syntactic baseline modelled after Wang et
// al.'s adaptive prefix framework (SIGMOD 2012): records are compared with
// whole-string q-gram Jaccard, candidates are generated with an ℓ-prefix
// scheme over globally ordered grams, and ℓ is chosen adaptively by
// estimating the candidate volume of each prefix length on a sample of the
// indexed collection.
type AdaptJoin struct {
	// Q is the gram length; zero means sim.DefaultQ.
	Q int
	// MaxL bounds the adaptive prefix extension; zero means 3.
	MaxL int
	// SampleSize is the number of indexed records used to estimate the best
	// ℓ; zero means 200.
	SampleSize int
}

// Name implements Algorithm.
func (a *AdaptJoin) Name() string { return "AdaptJoin" }

func (a *AdaptJoin) q() int {
	if a.Q > 0 {
		return a.Q
	}
	return sim.DefaultQ
}

func (a *AdaptJoin) maxL() int {
	if a.MaxL > 0 {
		return a.MaxL
	}
	return 3
}

func (a *AdaptJoin) sampleSize() int {
	if a.SampleSize > 0 {
		return a.SampleSize
	}
	return 200
}

// Join implements Algorithm.
func (a *AdaptJoin) Join(s, t []strutil.Record, theta float64) []Pair {
	q := a.q()
	gramsS := make([][]string, len(s))
	gramsT := make([][]string, len(t))
	for i, r := range s {
		gramsS[i] = strutil.QGrams(strutil.Normalize(r.Raw), q)
	}
	for i, r := range t {
		gramsT[i] = strutil.QGrams(strutil.Normalize(r.Raw), q)
	}
	freq := tokenFrequencies([][][]string{gramsS, gramsT})
	sortedS := make([][]string, len(s))
	sortedT := make([][]string, len(t))
	for i := range gramsS {
		sortedS[i] = sortByFrequency(dedupe(gramsS[i]), freq)
	}
	for i := range gramsT {
		sortedT[i] = sortByFrequency(dedupe(gramsT[i]), freq)
	}

	ell := a.chooseL(sortedS, sortedT, theta)
	candidates := a.candidatesWithL(sortedS, sortedT, theta, ell)

	var out []Pair
	for _, c := range candidates {
		i, j := c[0], c[1]
		v := sim.JaccardGrams(strutil.Normalize(s[i].Raw), strutil.Normalize(t[j].Raw), q)
		if v >= theta {
			out = append(out, Pair{S: s[i].ID, T: t[j].ID, Similarity: v})
		}
	}
	return sortPairs(out)
}

// chooseL estimates, for each prefix extension ℓ, the candidate volume on a
// sample of the indexed side and picks the ℓ with the lowest estimated cost
// (the adaptive step of the original framework, simplified to a single
// global ℓ).
func (a *AdaptJoin) chooseL(sortedS, sortedT [][]string, theta float64) int {
	limit := a.sampleSize()
	sampleS := sortedS
	sampleT := sortedT
	if len(sampleS) > limit {
		sampleS = sampleS[:limit]
	}
	if len(sampleT) > limit {
		sampleT = sampleT[:limit]
	}
	bestL, bestCost := 1, int(^uint(0)>>1)
	for ell := 1; ell <= a.maxL(); ell++ {
		cands := a.candidatesWithL(sampleS, sampleT, theta, ell)
		// Cost model: candidates dominate (verification), longer prefixes
		// add indexing cost proportional to ℓ.
		cost := len(cands)*4 + ell*(len(sampleS)+len(sampleT))
		if cost < bestCost {
			bestCost = cost
			bestL = ell
		}
	}
	return bestL
}

// candidatesWithL generates candidates under the ℓ-prefix scheme: prefixes
// are extended by ℓ−1 extra grams and a candidate must share at least ℓ
// prefix grams.
func (a *AdaptJoin) candidatesWithL(sortedS, sortedT [][]string, theta float64, ell int) [][2]int {
	index := map[string][]int{}
	for i, sig := range sortedS {
		keep := prefixLength(len(sig), theta) + ell - 1
		if keep > len(sig) {
			keep = len(sig)
		}
		for _, g := range sig[:keep] {
			index[g] = append(index[g], i)
		}
	}
	counts := map[[2]int]int{}
	for j, sig := range sortedT {
		keep := prefixLength(len(sig), theta) + ell - 1
		if keep > len(sig) {
			keep = len(sig)
		}
		for _, g := range sig[:keep] {
			for _, i := range index[g] {
				counts[[2]int{i, j}]++
			}
		}
	}
	var out [][2]int
	for key, c := range counts {
		if c >= ell {
			out = append(out, key)
		}
	}
	return out
}

// dedupe removes duplicate grams while preserving order.
func dedupe(grams []string) []string {
	seen := map[string]struct{}{}
	out := grams[:0:0]
	for _, g := range grams {
		if _, ok := seen[g]; ok {
			continue
		}
		seen[g] = struct{}{}
		out = append(out, g)
	}
	return out
}
