// Package baseline re-implements the state-of-the-art single-measure join
// algorithms the paper compares against in Section 5.5:
//
//   - K-Join   — taxonomy-aware similarity join (Shang et al., TKDE 2016)
//   - AdaptJoin — adaptive gram-prefix join for syntactic similarity
//     (Wang et al., SIGMOD 2012)
//   - PKduck   — abbreviation/synonym-aware join (Tao et al., PVLDB 2017)
//   - Combination — the union of the three result sets, the strongest
//     single-measure competitor the paper reports in Tables 13 and 14.
//
// Each baseline follows its published filtering principle (prefix filters
// over its own signature type) but is limited — by design — to a single
// similarity type, which is exactly why the paper's unified measure
// dominates them on mixed-similarity pairs.
package baseline

import (
	"sort"

	"github.com/aujoin/aujoin/internal/strutil"
)

// Pair is a baseline join result.
type Pair struct {
	S, T       int
	Similarity float64
}

// Algorithm is the common interface of all baseline joins.
type Algorithm interface {
	// Name returns the algorithm's display name used in result tables.
	Name() string
	// Join returns all pairs whose similarity (under the algorithm's own
	// measure) reaches theta.
	Join(s, t []strutil.Record, theta float64) []Pair
}

// sortPairs orders pairs by (S, T) for deterministic output.
func sortPairs(pairs []Pair) []Pair {
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].S != pairs[b].S {
			return pairs[a].S < pairs[b].S
		}
		return pairs[a].T < pairs[b].T
	})
	return pairs
}

// Combination unions the results of several baseline algorithms, keeping
// the maximal similarity reported for each pair. It is the "Combination"
// competitor of Tables 13 and 14.
type Combination struct {
	Algorithms []Algorithm
}

// NewCombination builds a Combination over the given algorithms.
func NewCombination(algorithms ...Algorithm) *Combination {
	return &Combination{Algorithms: algorithms}
}

// Name implements Algorithm.
func (c *Combination) Name() string { return "Combination" }

// Join implements Algorithm by running every member algorithm and unioning
// the results.
func (c *Combination) Join(s, t []strutil.Record, theta float64) []Pair {
	best := map[[2]int]float64{}
	for _, alg := range c.Algorithms {
		for _, p := range alg.Join(s, t, theta) {
			key := [2]int{p.S, p.T}
			if p.Similarity > best[key] {
				best[key] = p.Similarity
			}
		}
	}
	out := make([]Pair, 0, len(best))
	for key, simVal := range best {
		out = append(out, Pair{S: key[0], T: key[1], Similarity: simVal})
	}
	return sortPairs(out)
}

// prefixLength is the classic prefix-filter length for a signature of n
// elements under Jaccard-style threshold theta: keeping the first
// n − ⌈θ·n⌉ + 1 elements of the globally ordered signature guarantees one
// overlap between similar strings.
func prefixLength(n int, theta float64) int {
	if n == 0 {
		return 0
	}
	keep := n - int(ceil(theta*float64(n))) + 1
	if keep < 1 {
		keep = 1
	}
	if keep > n {
		keep = n
	}
	return keep
}

func ceil(x float64) float64 {
	i := float64(int(x))
	if i < x {
		return i + 1
	}
	return i
}

// tokenFrequencies counts document frequencies of signature elements over
// both collections; all baselines order their signatures by ascending
// frequency, mirroring the IDF ordering the original systems use.
func tokenFrequencies(collections [][][]string) map[string]int {
	freq := map[string]int{}
	for _, coll := range collections {
		for _, elems := range coll {
			seen := map[string]struct{}{}
			for _, e := range elems {
				if _, ok := seen[e]; ok {
					continue
				}
				seen[e] = struct{}{}
				freq[e]++
			}
		}
	}
	return freq
}

// sortByFrequency orders elements ascending by frequency with the element
// itself as tie-breaker.
func sortByFrequency(elems []string, freq map[string]int) []string {
	out := append([]string(nil), elems...)
	sort.Slice(out, func(i, j int) bool {
		fi, fj := freq[out[i]], freq[out[j]]
		if fi != fj {
			return fi < fj
		}
		return out[i] < out[j]
	})
	return out
}

// candidatesByPrefix builds inverted lists over the given per-record prefix
// element lists and returns all record pairs sharing at least one prefix
// element.
func candidatesByPrefix(prefixS, prefixT [][]string) [][2]int {
	index := map[string][]int{}
	for i, sig := range prefixS {
		for _, e := range sig {
			index[e] = append(index[e], i)
		}
	}
	seen := map[[2]int]struct{}{}
	var out [][2]int
	for j, sig := range prefixT {
		probed := map[int]struct{}{}
		for _, e := range sig {
			for _, i := range index[e] {
				if _, ok := probed[i]; ok {
					continue
				}
				probed[i] = struct{}{}
				key := [2]int{i, j}
				if _, ok := seen[key]; !ok {
					seen[key] = struct{}{}
					out = append(out, key)
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}
