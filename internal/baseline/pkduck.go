package baseline

import (
	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/synonym"
)

// PKDuck is the synonym/abbreviation baseline modelled after Tao et al.'s
// pkduck (PVLDB 2017): record similarity is the best token-set Jaccard
// achievable after rewriting one record with applicable synonym rules
// (lhs → rhs applied on consecutive token spans, non-overlapping). The
// filter is a prefix filter over the record's tokens extended with every
// token derivable through an applicable rule, so two records related by a
// rule always share a signature element.
type PKDuck struct {
	Rules *synonym.RuleSet
	// MaxRewrites bounds the number of rules applied to one record during
	// verification; zero means 4 (abbreviation chains are short).
	MaxRewrites int
}

// NewPKDuck builds the baseline over the given rule set.
func NewPKDuck(rules *synonym.RuleSet) *PKDuck { return &PKDuck{Rules: rules} }

// Name implements Algorithm.
func (p *PKDuck) Name() string { return "PKduck" }

func (p *PKDuck) maxRewrites() int {
	if p.MaxRewrites > 0 {
		return p.MaxRewrites
	}
	return 4
}

// Join implements Algorithm.
func (p *PKDuck) Join(s, t []strutil.Record, theta float64) []Pair {
	sigS := make([][]string, len(s))
	sigT := make([][]string, len(t))
	for i, r := range s {
		sigS[i] = p.signatureElements(r.Tokens)
	}
	for i, r := range t {
		sigT[i] = p.signatureElements(r.Tokens)
	}
	freq := tokenFrequencies([][][]string{sigS, sigT})
	prefS := make([][]string, len(sigS))
	for i := range sigS {
		sorted := sortByFrequency(sigS[i], freq)
		prefS[i] = sorted[:prefixLength(len(sorted), theta)]
	}
	prefT := make([][]string, len(sigT))
	for i := range sigT {
		sorted := sortByFrequency(sigT[i], freq)
		prefT[i] = sorted[:prefixLength(len(sorted), theta)]
	}
	candidates := candidatesByPrefix(prefS, prefT)
	var out []Pair
	for _, c := range candidates {
		i, j := c[0], c[1]
		v := p.Similarity(s[i].Tokens, t[j].Tokens)
		if v >= theta {
			out = append(out, Pair{S: s[i].ID, T: t[j].ID, Similarity: v})
		}
	}
	return sortPairs(out)
}

// signatureElements returns the record's tokens plus every token of the
// opposite side of any rule whose side matches a span of the record.
func (p *PKDuck) signatureElements(tokens []string) []string {
	seen := map[string]struct{}{}
	var out []string
	add := func(e string) {
		if _, ok := seen[e]; ok {
			return
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	for _, tok := range tokens {
		add(tok)
	}
	if p.Rules == nil {
		return out
	}
	maxSpan := p.Rules.MaxSideTokens()
	for start := 0; start < len(tokens); start++ {
		limit := maxSpan
		if rem := len(tokens) - start; rem < limit {
			limit = rem
		}
		for length := 1; length <= limit; length++ {
			span := tokens[start : start+length]
			for _, id := range p.Rules.ByLHS(span) {
				for _, tok := range p.Rules.Rule(id).RHS {
					add(tok)
				}
			}
			for _, id := range p.Rules.ByRHS(span) {
				for _, tok := range p.Rules.Rule(id).LHS {
					add(tok)
				}
			}
		}
	}
	return out
}

// Similarity computes the pkduck-style similarity: the maximum token-set
// Jaccard between any rule-rewriting of a and the original b, or of b and
// the original a. Rewritings are explored greedily, applying at each step
// the rule application that most improves the Jaccard, up to MaxRewrites
// applications.
func (p *PKDuck) Similarity(a, b []string) float64 {
	base := tokenJaccard(a, b)
	best := base
	if p.Rules != nil {
		if v := p.bestRewriteJaccard(a, b); v > best {
			best = v
		}
		if v := p.bestRewriteJaccard(b, a); v > best {
			best = v
		}
	}
	return best
}

// bestRewriteJaccard greedily rewrites `from` with applicable rules to
// maximise its token Jaccard against `to`.
func (p *PKDuck) bestRewriteJaccard(from, to []string) float64 {
	current := append([]string(nil), from...)
	best := tokenJaccard(current, to)
	for step := 0; step < p.maxRewrites(); step++ {
		improved := false
		bestTokens := current
		maxSpan := p.Rules.MaxSideTokens()
		for start := 0; start < len(current); start++ {
			limit := maxSpan
			if rem := len(current) - start; rem < limit {
				limit = rem
			}
			for length := 1; length <= limit; length++ {
				span := current[start : start+length]
				for _, id := range p.Rules.ByLHS(span) {
					cand := replaceSpan(current, start, length, p.Rules.Rule(id).RHS)
					if v := tokenJaccard(cand, to); v > best {
						best, bestTokens, improved = v, cand, true
					}
				}
				for _, id := range p.Rules.ByRHS(span) {
					cand := replaceSpan(current, start, length, p.Rules.Rule(id).LHS)
					if v := tokenJaccard(cand, to); v > best {
						best, bestTokens, improved = v, cand, true
					}
				}
			}
		}
		if !improved {
			break
		}
		current = bestTokens
	}
	return best
}

// replaceSpan substitutes tokens[start:start+length] with the replacement.
func replaceSpan(tokens []string, start, length int, replacement []string) []string {
	out := make([]string, 0, len(tokens)-length+len(replacement))
	out = append(out, tokens[:start]...)
	out = append(out, replacement...)
	out = append(out, tokens[start+length:]...)
	return out
}

// tokenJaccard is the Jaccard coefficient of two token sets.
func tokenJaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := strutil.TokenSet(a)
	sb := strutil.TokenSet(b)
	inter := strutil.OverlapCount(sa, sb)
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
