// Package cmdutil holds the small helpers shared by the command-line
// binaries (cmd/aujoin, cmd/aujoind): line-oriented catalog loading,
// flag-value parsing and NDJSON response streaming. It exists so the
// commands cannot drift apart on details like scanner buffer limits or
// filter spellings.
package cmdutil

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"

	"github.com/aujoin/aujoin"
)

// ReadLines reads a file into one string per line. Lines may be up to 16MB
// long (generous for catalog records).
func ReadLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	return out, sc.Err()
}

// ParseFilter maps the -filter flag spellings onto the signature filters;
// unknown values select the recommended AU-Filter (DP).
func ParseFilter(name string) aujoin.Filter {
	switch name {
	case "u":
		return aujoin.UFilter
	case "heuristic":
		return aujoin.AUFilterHeuristic
	default:
		return aujoin.AUFilterDP
	}
}

// NDJSONWriter streams newline-delimited JSON (one object per line) over an
// HTTP response, flushing after every line so results reach the client
// incrementally — the transport half of a streaming endpoint: a consumer can
// start processing (or hang up) long before the producer finishes.
type NDJSONWriter struct {
	enc     *json.Encoder
	flusher http.Flusher
	err     error
}

// NewNDJSONWriter prepares w for NDJSON streaming, setting the content type.
// It must be called before the first byte of the body is written.
func NewNDJSONWriter(w http.ResponseWriter) *NDJSONWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	return &NDJSONWriter{enc: json.NewEncoder(w), flusher: flusher}
}

// Write encodes one value as a JSON line and flushes it. After the first
// failure (typically the client hanging up mid-stream) every subsequent call
// returns the same error without writing, so streaming loops can simply stop
// on non-nil.
func (nw *NDJSONWriter) Write(v any) error {
	if nw.err != nil {
		return nw.err
	}
	if err := nw.enc.Encode(v); err != nil {
		nw.err = err
		return err
	}
	if nw.flusher != nil {
		nw.flusher.Flush()
	}
	return nil
}

// DecodeNDJSON is the client half of the NDJSON protocol: it decodes one
// JSON value per line from r and hands each to fn as it arrives, so a
// consumer processes a stream incrementally instead of buffering the whole
// response. fn returning an error stops the decode and surfaces that error
// (closing the body then aborts the producer). Lines may be up to 16MB, the
// same cap ReadLines applies to catalog records.
func DecodeNDJSON[T any](r io.Reader, fn func(T) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var v T
		if err := json.Unmarshal(line, &v); err != nil {
			return err
		}
		if err := fn(v); err != nil {
			return err
		}
	}
	return sc.Err()
}
