// Package cmdutil holds the small helpers shared by the command-line
// binaries (cmd/aujoin, cmd/aujoind): line-oriented catalog loading and
// flag-value parsing. It exists so the commands cannot drift apart on
// details like scanner buffer limits or filter spellings.
package cmdutil

import (
	"bufio"
	"os"

	"github.com/aujoin/aujoin"
)

// ReadLines reads a file into one string per line. Lines may be up to 16MB
// long (generous for catalog records).
func ReadLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	return out, sc.Err()
}

// ParseFilter maps the -filter flag spellings onto the signature filters;
// unknown values select the recommended AU-Filter (DP).
func ParseFilter(name string) aujoin.Filter {
	switch name {
	case "u":
		return aujoin.UFilter
	case "heuristic":
		return aujoin.AUFilterHeuristic
	default:
		return aujoin.AUFilterDP
	}
}
