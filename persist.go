package aujoin

import (
	"fmt"
	"io"
	"sync"

	"github.com/aujoin/aujoin/internal/join"
	"github.com/aujoin/aujoin/internal/store"
)

// WriteSnapshot captures the index's current state — catalog, tombstones,
// pebble order, stored signatures, prepared-segment metadata and planner
// feedback — and writes it to w in the versioned binary snapshot format of
// internal/store. The capture is one atomic cut across all shards (writers
// stall for its duration; readers do not), so the written image is exactly
// the index state at some single instant. It returns the number of bytes
// written.
func (ix *Index) WriteSnapshot(w io.Writer) (int64, error) {
	data := ix.inner.CaptureSnapshot().Encode()
	n, err := w.Write(data)
	return int64(n), err
}

// ReadSnapshot reconstructs an Index from a snapshot previously written by
// WriteSnapshot. The Joiner must be configured with the same similarity
// resources (synonym rules, taxonomy, measures, gram length) the original
// index's Joiner had — the snapshot does not carry them — and the restored
// index then serves bit-identical Query/QueryTopK/Probe results to the one
// captured, without re-running signature selection or verification
// preparation.
func (j *Joiner) ReadSnapshot(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	snap, err := store.Decode(data)
	if err != nil {
		return nil, err
	}
	return j.restoreIndex(snap)
}

// restoreIndex rebuilds the public Index from a decoded snapshot.
func (j *Joiner) restoreIndex(snap *store.Snapshot) (*Index, error) {
	inner, err := j.joiner.RestoreShardedIndex(snap, join.DynamicOptions{})
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner, tau: snap.Tau}, nil
}

// PersistentIndex couples an Index with a durable data directory: every
// Insert/Remove batch is fsynced to a write-ahead log before it is applied,
// and Checkpoint folds the log into a new atomic snapshot generation. After
// a crash (or plain restart), OpenPersistent recovers the last durable
// state: the newest intact snapshot plus every completely logged mutation
// after it, with any torn WAL tail truncated. A mutation whose call
// returned is therefore never lost, and recovery never observes half a
// batch.
//
// Mutations and checkpoints serialize on an internal mutex; queries run
// against lock-free snapshots exactly as on a plain Index and never block
// on persistence.
type PersistentIndex struct {
	mu sync.Mutex
	ix *Index
	st *store.Store
}

// OpenPersistent opens (or initializes) the data directory and returns a
// persistent index backed by it.
//
// If the directory holds a usable snapshot, the index is restored from it
// and the WAL replayed — records and opts are IGNORED in that case: the
// durable state wins, including the θ/τ/filter configuration it was built
// with. Otherwise a fresh index is built from records under opts/iopts and
// an initial checkpoint is committed so the directory is recoverable from
// the start. The Joiner must be configured with the same similarity
// resources across restarts; they are not persisted.
func (j *Joiner) OpenPersistent(dir string, records []string, opts JoinOptions, iopts IndexOptions) (*PersistentIndex, error) {
	return j.openPersistentFS(store.OS, dir, records, opts, iopts)
}

// openPersistentFS is OpenPersistent over an injectable filesystem; the
// crash-recovery tests drive it with a fault-injecting in-memory FS.
func (j *Joiner) openPersistentFS(fs store.FS, dir string, records []string, opts JoinOptions, iopts IndexOptions) (*PersistentIndex, error) {
	st, snap, entries, err := store.Open(fs, dir)
	if err != nil {
		return nil, err
	}
	var ix *Index
	if snap != nil {
		ix, err = j.restoreIndex(snap)
		if err != nil {
			st.Close()
			return nil, err
		}
		for _, e := range entries {
			switch e.Op {
			case store.OpInsert:
				// Stable IDs are assigned sequentially from the snapshot's
				// next-ID watermark, so replaying the batches in log order
				// reassigns exactly the IDs the original run handed out.
				ix.Insert(e.Raws)
			case store.OpRemove:
				ix.RemoveBatch(walIDs(e.IDs))
			}
		}
	} else {
		ix = j.IndexWith(records, opts, iopts)
		if err := st.Commit(ix.inner.CaptureSnapshot()); err != nil {
			st.Close()
			return nil, fmt.Errorf("aujoin: initial checkpoint: %w", err)
		}
	}
	return &PersistentIndex{ix: ix, st: st}, nil
}

// walIDs converts logged record IDs to ints.
func walIDs(ids []uint64) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// Index returns the underlying live index for queries and snapshots.
// Mutating it directly (Insert/Remove on the returned value) bypasses the
// WAL and forfeits durability for those mutations — always mutate through
// the PersistentIndex.
func (px *PersistentIndex) Index() *Index { return px.ix }

// Insert durably logs the batch, then applies it, returning the new stable
// IDs. On error nothing was applied and the store refuses further
// mutations (recovery from the last durable state is the way back).
func (px *PersistentIndex) Insert(records []string) ([]int, error) {
	if len(records) == 0 {
		return nil, nil
	}
	px.mu.Lock()
	defer px.mu.Unlock()
	if err := px.st.Append(store.WalEntry{Op: store.OpInsert, Raws: records}); err != nil {
		return nil, err
	}
	return px.ix.Insert(records), nil
}

// Remove durably logs and applies a single-record removal, reporting
// whether the record was present and live.
func (px *PersistentIndex) Remove(id int) (bool, error) {
	ok, err := px.RemoveBatch([]int{id})
	if err != nil {
		return false, err
	}
	return ok[0], nil
}

// RemoveBatch durably logs the batch, then applies it, reporting per ID
// whether the record was present and live.
func (px *PersistentIndex) RemoveBatch(ids []int) ([]bool, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	px.mu.Lock()
	defer px.mu.Unlock()
	wal := make([]uint64, len(ids))
	for i, id := range ids {
		wal[i] = uint64(id)
	}
	if err := px.st.Append(store.WalEntry{Op: store.OpRemove, IDs: wal}); err != nil {
		return nil, err
	}
	return px.ix.RemoveBatch(ids), nil
}

// Checkpoint captures the current index state and commits it as a new
// snapshot generation, truncating the WAL. Queries keep serving throughout;
// mutations wait for the whole checkpoint (capture, encode and fsync run
// under the mutation mutex — serializing them against the WAL is what makes
// the snapshot an exact cut of the logged history).
func (px *PersistentIndex) Checkpoint() error {
	px.mu.Lock()
	defer px.mu.Unlock()
	return px.st.Commit(px.ix.inner.CaptureSnapshot())
}

// Close releases the WAL handle. Pending durable state is already on disk
// (every mutation was fsynced when applied); Close does not checkpoint —
// call Checkpoint first to fold the log if a compact restart matters.
func (px *PersistentIndex) Close() error {
	px.mu.Lock()
	defer px.mu.Unlock()
	return px.st.Close()
}
