package aujoin

import "github.com/aujoin/aujoin/internal/join"

// This file is the public surface of the cluster hooks: what a multi-node
// deployment's coordinator and workers need from an Index beyond the
// serving API — centrally assigned record IDs, export of the live
// key-frequency table, and adoption of an externally built frozen order
// (the order-sync protocol's prepare phase on the worker side).

// OrderImage is the wire form of a pebble frequency order: every key with
// its document frequency, in finalize order (frequency ascending, key
// ascending on ties). It is what an epoch-bump builder ships to the other
// workers: feeding an image to AdoptOrder reproduces, bit for bit, the
// frozen order Finalize would have built over the same frequencies.
type OrderImage struct {
	Keys  []string `json:"keys"`
	Freqs []int    `json:"freqs"`
}

// InsertWithIDs appends records whose stable IDs the caller assigned. A
// cluster coordinator allocates IDs centrally so that every replica of a
// group indexes identical content under identical IDs — which is what makes
// replica answers interchangeable and scatter-gather results bit-identical
// to a single-node index. IDs must be non-negative, unique within the
// batch, and (by the caller's sequencing protocol) never reuse a live ID.
func (ix *Index) InsertWithIDs(ids []int, records []string) error {
	return ix.inner.InsertBatchRecords(ids, records)
}

// KeyFrequencies exports the document-frequency table over the index's
// current live records, in finalize order. Groups of a cluster partition
// the record space, so per-group tables sum to the global table — the
// builder elected during an epoch bump merges one table per group and
// returns the summed image for everyone to adopt.
func (ix *Index) KeyFrequencies() OrderImage {
	keys, freqs := ix.inner.KeyFrequencies()
	return OrderImage{Keys: keys, Freqs: freqs}
}

// AdoptOrder replaces the index's pebble order with the externally built
// image and rebuilds every shard under it, while readers keep being served
// the pre-adoption snapshot. Live keys missing from the image are interned
// into the adopted order's dynamic region, so adoption is correct even when
// the image's frequency collection raced a mutation. After adoption the
// index never re-freezes its order on its own: order ownership has moved to
// the caller (the coordinator's epoch protocol).
func (ix *Index) AdoptOrder(img OrderImage) error {
	return ix.inner.AdoptOrder(img.Keys, img.Freqs)
}

// DisableAutoRefreeze turns off self-triggered global re-finalizes of the
// shared pebble order. Cluster workers call it at startup: the order must
// only change through coordinator-driven epoch bumps, never by a local
// threshold trigger (per-shard compaction rebuilds stay enabled — they keep
// the order).
func (ix *Index) DisableAutoRefreeze() { ix.inner.DisableRefreeze() }

// PipelineGoroutines reports the number of join-pipeline goroutines
// currently in flight across the process. Leak tests assert it settles to
// zero once a cancelled query or scatter-gather has fully aborted.
func PipelineGoroutines() int64 { return join.PipelineGoroutines() }
