// Package aujoin is the public API of the unified string similarity join
// framework, a from-scratch Go implementation of
//
//	Pengfei Xu and Jiaheng Lu: "Towards a Unified Framework for String
//	Similarity Joins", PVLDB 12(11), 2019.
//
// The framework measures how similar two strings are by combining three
// kinds of similarity at once — syntactic (q-gram Jaccard), synonym-rule
// based, and taxonomy (IS-A hierarchy) based — and joins large string
// collections under that unified measure with pebble-signature filtering
// (U-Filter and the adaptive AU-Filters) plus sampling-based selection of
// the overlap constraint τ.
//
// # Quick start
//
//	j, err := aujoin.NewStrict(
//		aujoin.WithSynonym("coffee shop", "cafe", 1.0),
//		aujoin.WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "espresso"),
//		aujoin.WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "latte"),
//	)
//	if err != nil { ... }
//	sim := j.Similarity("coffee shop latte Helsingki", "espresso cafe Helsinki")
//	matches, _ := j.Join(left, right, aujoin.JoinOptions{Theta: 0.8, AutoTau: true})
//
// NewStrict is the recommended constructor; New is the panic-on-error
// convenience wrapper for option lists known to be valid (tests, examples,
// hard-coded configuration).
//
// # Streaming and cancellation
//
// Every batch entry point has a streaming sibling that accepts a
// context.Context and yields matches one at a time as the parallel verify
// stage confirms them (Go 1.23 range-over-func), so peak match buffering is
// bounded by the worker count rather than the result size and a deadline or
// a disconnected client cancels the join mid-flight:
//
//	for m, err := range j.JoinSeq(ctx, left, right, opts) {
//		if err != nil { ... }   // ctx cancelled or deadline exceeded
//		consume(m)              // breaking out stops the pipeline
//	}
//
// QueryCtx and QueryTopKCtx serve single strings under the same contract and
// take per-request QueryOptions (threshold, k, worker-count overrides) that
// the batch API fixes at build time.
//
// # Build once, probe many
//
// Every pebble is interned into a dense integer ID ordered by global
// frequency, and the whole filtering pipeline (signatures, inverted index,
// candidate counting) runs on those IDs. Joiner.Index materialises that
// state once so that repeated joins and query-serving workloads skip it:
//
//	ix := j.Index(catalog, aujoin.JoinOptions{Theta: 0.8, Tau: 2})
//	matches, _ := ix.Probe(batch)          // join a batch against the catalog
//	hits := ix.Query("espresso cafe")      // serve a single lookup
//
// Join and SelfJoin are one-shot compositions of the same stages.
//
// # Dynamic serving
//
// An Index is mutable and concurrently servable: Insert and Remove change
// the catalog online, while Snapshot hands out immutable views that serve
// Query, QueryTopK and Probe lock-free and unaffected by concurrent
// writes. New signature keys land in an append-only dynamic region of the
// global pebble order, and the index re-finalizes (full rebuild) once the
// appended mass crosses a threshold:
//
//	ids := ix.Insert([]string{"espresso bar Helsinki"})
//	view := ix.Snapshot()                  // consistent, lock-free reads
//	top := view.QueryTopK("espresso", 10)  // ranked serving
//	ix.Remove(ids[0])                      // tombstoned for later snapshots
//
// IndexWith partitions the catalog across shards that mutate in parallel
// and rebuild independently — queries fan out and merge, results stay
// identical to the unsharded index:
//
//	ix := j.IndexWith(catalog, opts, aujoin.IndexOptions{Shards: 0}) // GOMAXPROCS shards
//
// cmd/aujoind wraps this in an HTTP server; `benchrun -exp serve` load
// tests it.
//
// See the examples/ directory for complete runnable programs and
// cmd/benchrun for the harness that regenerates the paper's tables and
// figures.
package aujoin

import (
	"context"
	"fmt"
	"io"
	"iter"
	"time"

	"github.com/aujoin/aujoin/internal/core"
	"github.com/aujoin/aujoin/internal/estimator"
	"github.com/aujoin/aujoin/internal/join"
	"github.com/aujoin/aujoin/internal/pebble"
	"github.com/aujoin/aujoin/internal/sim"
	"github.com/aujoin/aujoin/internal/strutil"
	"github.com/aujoin/aujoin/internal/synonym"
	"github.com/aujoin/aujoin/internal/taxonomy"
)

// Filter selects the signature-selection algorithm used by Join.
type Filter int

const (
	// UFilter is the baseline prefix filter with a single-overlap guarantee
	// (Algorithm 2/3 of the paper).
	UFilter Filter = iota
	// AUFilterHeuristic is the adaptive filter with the heuristic slack
	// bound (Algorithm 4).
	AUFilterHeuristic
	// AUFilterDP is the adaptive filter with the dynamic-programming slack
	// bound (Algorithm 5); it produces the shortest signatures and is the
	// recommended default.
	AUFilterDP
)

// String returns the paper's name for the filter.
func (f Filter) String() string { return f.method().String() }

func (f Filter) method() pebble.Method {
	switch f {
	case UFilter:
		return pebble.UFilter
	case AUFilterHeuristic:
		return pebble.AUHeuristic
	default:
		return pebble.AUDP
	}
}

// Match is one join result: indices into the two input collections and the
// unified similarity of the pair.
type Match struct {
	S, T       int
	Similarity float64
}

// Stats summarises one join execution.
type Stats struct {
	// Candidates is the number of pairs that survived filtering.
	Candidates int
	// ShardCandidates breaks Candidates down per shard when the probe ran
	// against a sharded Index (IndexOptions.Shards ≥ 2): entry i counts the
	// candidates shard i contributed, and the entries always sum to
	// Candidates. It is nil for unsharded probes and one-shot joins.
	ShardCandidates []int
	// Results is the number of matches returned.
	Results int
	// FilterPostings is the number of posting entries (record IDs, whether
	// walked in a sorted list or popcounted out of a packed bitmap block)
	// the candidate phase processed — the T_τ cost measure of the paper.
	FilterPostings int64
	// BitsetTokens and SliceTokens split the signature tokens the candidate
	// phase looked up by posting-list representation: packed bitmap form
	// versus sorted slice form. Their sum is the number of distinct indexed
	// tokens across all probe signatures.
	BitsetTokens int64
	SliceTokens  int64
	// SuggestedTau is the overlap constraint used: the auto-suggested τ when
	// AutoTau was enabled, the adaptive planner's per-batch choice on
	// planned Index probes, and the fixed build-time τ otherwise.
	SuggestedTau int
	// VerifiedCandidates counts the candidates whose full similarity was
	// actually computed; PrunedByBound the candidates dismissed by a sound
	// O(1) upper bound before any segment work; MemoHits the segment-pair
	// similarity evaluations answered from the per-query memo instead of
	// being recomputed. VerifiedCandidates + PrunedByBound ≤ Candidates.
	VerifiedCandidates int64
	PrunedByBound      int64
	MemoHits           int64
	// SuggestionTime, FilterTime and VerifyTime break the total down. Each
	// is the wall-clock duration of its stage — elapsed time, NOT CPU time
	// summed over verification workers or shards — so the three add up to
	// the end-to-end latency the caller observed.
	SuggestionTime time.Duration
	FilterTime     time.Duration
	VerifyTime     time.Duration
}

// Total returns the total join time: the sum of the per-stage wall-clock
// durations, i.e. the end-to-end latency of the call (not CPU time).
func (s Stats) Total() time.Duration { return s.SuggestionTime + s.FilterTime + s.VerifyTime }

// JoinOptions configures Join and SelfJoin.
type JoinOptions struct {
	// Theta is the unified-similarity threshold in [0, 1].
	Theta float64
	// Tau is the overlap constraint (≥ 1); ignored when AutoTau is set.
	Tau int
	// AutoTau runs the sampling-based estimator of Section 4 to pick τ.
	AutoTau bool
	// Filter selects the signature algorithm; the default is AUFilterDP.
	Filter Filter
	// Workers bounds verification parallelism (0 = all CPUs).
	Workers int
	// Seed seeds the sampling-based τ estimator (AutoTau and SuggestTau);
	// 0 means the reproducible default seed 1, so runs are deterministic
	// unless a different seed is requested explicitly.
	Seed int64
}

// estimatorSeed maps the zero value to the reproducible default.
func (o JoinOptions) estimatorSeed() int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

// Option configures a Joiner at construction time.
type Option func(*builder) error

type builder struct {
	rules    *synonym.RuleSet
	tax      *taxonomy.Tree
	measures sim.MeasureSet
	q        int
	t        float64
	err      error
}

// WithSynonym adds one synonym (or abbreviation) rule lhs → rhs with the
// given closeness in (0, 1].
func WithSynonym(lhs, rhs string, closeness float64) Option {
	return func(b *builder) error {
		_, err := b.rules.Add(lhs, rhs, closeness)
		return err
	}
}

// WithSynonymsFrom loads tab-separated "lhs<TAB>rhs[<TAB>closeness]" rules.
func WithSynonymsFrom(r io.Reader) Option {
	return func(b *builder) error {
		rs, err := synonym.Read(r)
		if err != nil {
			return err
		}
		for _, rule := range rs.Rules() {
			if _, err := b.rules.Add(rule.LHSText(), rule.RHSText(), rule.C); err != nil {
				return err
			}
		}
		return nil
	}
}

// WithTaxonomyPath adds a root-to-leaf path of IS-A entities, creating any
// missing intermediate nodes. The first element must always be the same
// root name.
func WithTaxonomyPath(path ...string) Option {
	return func(b *builder) error {
		if len(path) == 0 {
			return fmt.Errorf("aujoin: empty taxonomy path")
		}
		if b.tax == nil {
			b.tax = taxonomy.NewTree(path[0])
		} else if _, ok := b.tax.Lookup(path[0]); !ok {
			return fmt.Errorf("aujoin: taxonomy path must start at the existing root %q", b.tax.Name(b.tax.Root()))
		}
		parent := b.tax.Root()
		for _, name := range path[1:] {
			id, err := b.tax.AddChild(parent, name)
			if err != nil {
				return err
			}
			parent = id
		}
		return nil
	}
}

// WithTaxonomyFrom loads a taxonomy in the "node<TAB>parent" format
// produced by the datagen tool.
func WithTaxonomyFrom(r io.Reader) Option {
	return func(b *builder) error {
		t, err := taxonomy.Read(r)
		if err != nil {
			return err
		}
		b.tax = t
		return nil
	}
}

// WithMeasures restricts the unified similarity to a combination of the
// base measures, given in the paper's letter notation ("J", "TS", "TJS",
// …). The default is all three.
func WithMeasures(combo string) Option {
	return func(b *builder) error {
		b.measures = sim.ParseMeasureSet(combo)
		return nil
	}
}

// WithGramLength sets the q-gram length of the Jaccard measure (default 2).
func WithGramLength(q int) Option {
	return func(b *builder) error {
		if q < 1 {
			return fmt.Errorf("aujoin: gram length %d < 1", q)
		}
		b.q = q
		return nil
	}
}

// WithApproximationT sets the t parameter of Algorithm 1 (larger t = finer
// local improvements, more work; default 50).
func WithApproximationT(t float64) Option {
	return func(b *builder) error {
		if t <= 1 {
			return fmt.Errorf("aujoin: t must be > 1")
		}
		b.t = t
		return nil
	}
}

// Joiner computes unified similarities and joins string collections. It is
// safe for concurrent use once constructed.
type Joiner struct {
	ctx    *sim.Context
	calc   *core.Calculator
	joiner *join.Joiner
}

// New constructs a Joiner from the given options, panicking on invalid
// ones. It is the convenience wrapper for option lists known to be valid
// (tests, examples, hard-coded configuration); code handling user-supplied
// configuration should call NewStrict, the documented default constructor,
// and handle the error.
func New(opts ...Option) *Joiner {
	j, err := NewStrict(opts...)
	if err != nil {
		panic(fmt.Sprintf("aujoin.New: %v", err))
	}
	return j
}

// NewStrict constructs a Joiner from the given options, reporting invalid
// options as an error. It is the recommended constructor.
func NewStrict(opts ...Option) (*Joiner, error) {
	b := &builder{rules: synonym.NewRuleSet(), measures: sim.SetAll, q: sim.DefaultQ, t: core.DefaultT}
	for _, opt := range opts {
		if err := opt(b); err != nil {
			return nil, err
		}
	}
	ctx := &sim.Context{Q: b.q, Rules: b.rules, Tax: b.tax, Measures: b.measures}
	if b.tax != nil {
		b.tax.Finalize()
	}
	calc := core.NewCalculator(ctx)
	calc.T = b.t
	return &Joiner{ctx: ctx, calc: calc, joiner: join.NewJoiner(ctx)}, nil
}

// Similarity computes the unified similarity of two strings with the
// polynomial-time approximation (Algorithm 1).
func (j *Joiner) Similarity(s, t string) float64 { return j.calc.Similarity(s, t) }

// SimilarityExact computes the exact unified similarity by enumerating all
// well-defined partitions. The boolean reports whether the enumeration
// completed within its budget; when false the value is a lower bound.
func (j *Joiner) SimilarityExact(s, t string) (float64, bool) {
	res := j.calc.SimilarityExact(s, t)
	return res.Similarity, res.Complete
}

// Join finds all pairs (i from s, j from t) whose unified similarity
// reaches opts.Theta.
func (j *Joiner) Join(s, t []string, opts JoinOptions) ([]Match, Stats) {
	recsS := strutil.NewCollection(s)
	recsT := strutil.NewCollection(t)
	return j.joinRecords(recsS, recsT, opts, false)
}

// SelfJoin finds all unordered pairs within one collection.
func (j *Joiner) SelfJoin(s []string, opts JoinOptions) ([]Match, Stats) {
	recs := strutil.NewCollection(s)
	return j.joinRecords(recs, recs, opts, true)
}

// JoinSeq is the streaming form of Join: it returns a Go 1.23 range-over-func
// sequence that yields each match as the parallel verify stage confirms it,
// in completion order (collect and sort by (S, T) to reproduce Join's order).
// All work — signature generation, filtering, verification — runs inside the
// consumer's range loop, and peak match buffering is bounded by the worker
// count, not the result size.
//
// Cancellation is cooperative and prompt: when ctx is cancelled or its
// deadline passes, the pipeline stops between candidate pairs and the
// sequence yields one final non-nil error (with AutoTau, a cancellation
// during the sampling stage surfaces the same way). Breaking out of the loop
// early stops the pipeline too, and is not an error. In both cases every
// internal goroutine is released before the range statement returns.
func (j *Joiner) JoinSeq(ctx context.Context, s, t []string, opts JoinOptions) iter.Seq2[Match, error] {
	return func(yield func(Match, error) bool) {
		recsS := strutil.NewCollection(s)
		recsT := strutil.NewCollection(t)
		jopts, err := j.resolveSeqOptions(ctx, recsS, recsT, opts)
		if err != nil {
			yield(Match{}, err)
			return
		}
		forwardPairs(j.joiner.JoinSeq(ctx, recsS, recsT, jopts), yield)
	}
}

// SelfJoinSeq is the streaming form of SelfJoin, under the same contract as
// JoinSeq: each unordered pair (i < j) is yielded at most once, in
// completion order.
func (j *Joiner) SelfJoinSeq(ctx context.Context, s []string, opts JoinOptions) iter.Seq2[Match, error] {
	return func(yield func(Match, error) bool) {
		recs := strutil.NewCollection(s)
		jopts, err := j.resolveSeqOptions(ctx, recs, recs, opts)
		if err != nil {
			yield(Match{}, err)
			return
		}
		forwardPairs(j.joiner.SelfJoinSeq(ctx, recs, jopts), yield)
	}
}

// resolveSeqOptions maps JoinOptions onto the internal join options, running
// the τ estimator under ctx when AutoTau is set so a deadline also bounds
// the sampling stage.
func (j *Joiner) resolveSeqOptions(ctx context.Context, recsS, recsT []strutil.Record, opts JoinOptions) (join.Options, error) {
	tau := opts.Tau
	if tau < 1 {
		tau = 1
	}
	if opts.AutoTau {
		rec, err := estimator.SuggestCtx(ctx, j.joiner, recsS, recsT,
			join.Options{Theta: opts.Theta, Method: opts.Filter.method()},
			estimator.Config{Seed: opts.estimatorSeed()})
		if err != nil {
			return join.Options{}, err
		}
		tau = rec.BestTau
	}
	return join.Options{
		Theta:   opts.Theta,
		Tau:     tau,
		Method:  opts.Filter.method(),
		Workers: opts.Workers,
	}, nil
}

// forwardPairs adapts an internal pair stream onto the public Match type,
// preserving the streaming contract (errors forwarded once, consumer breaks
// propagated back into the pipeline).
func forwardPairs(seq iter.Seq2[join.Pair, error], yield func(Match, error) bool) {
	for p, err := range seq {
		if err != nil {
			yield(Match{}, err)
			return
		}
		if !yield(Match{S: p.S, T: p.T, Similarity: p.Similarity}, nil) {
			return
		}
	}
}

// PlanMode selects how an Index picks the probe-side filter configuration
// (signature-selection method and overlap constraint τ) for a request.
type PlanMode int

const (
	// PlanAuto (the default) plans each request adaptively: a per-query
	// cost model over the query's token statistics and the index's live
	// document frequencies picks the cheapest provably-sound configuration,
	// and an online feedback loop corrects the model from observed
	// executions. Results are bit-identical to PlanFixed — only the filter's
	// over-admission rate (and therefore latency) changes.
	PlanAuto PlanMode = iota
	// PlanFixed pins the build-time Filter and Tau on every request —
	// the pre-planner behaviour.
	PlanFixed
)

// internal maps the public plan mode onto the internal one.
func (m PlanMode) internal() join.PlanMode {
	if m == PlanFixed {
		return join.PlanFixed
	}
	return join.PlanAuto
}

// QueryOptions carries per-request overrides for QueryCtx and QueryTopKCtx —
// parameters the batch Query/QueryTopK freeze at index build time. The zero
// value changes nothing.
type QueryOptions struct {
	// MinSimilarity overrides the similarity threshold for this request;
	// 0 keeps the build-time Theta. Values above the build-time Theta are
	// exact (the filter over-admits and verification tightens). Values below
	// it are best-effort: the candidate set is still bounded by the
	// build-time filter, so matches between the override and the build-time
	// Theta are returned only when they survive that filter.
	MinSimilarity float64
	// K bounds the number of matches QueryTopKCtx returns; it is ignored by
	// QueryCtx, which returns every match. K ≤ 0 returns an empty result.
	K int
	// Workers bounds this request's verification parallelism; 0 or 1
	// verifies sequentially (on a sharded index, the per-shard fan-out still
	// runs concurrently).
	Workers int
	// Plan overrides the planning mode for this request: PlanAuto (the
	// default) picks the cheapest sound filter configuration per query,
	// PlanFixed pins the build-time Filter and Tau. On an index built with
	// IndexOptions.Plan == PlanFixed every request runs fixed regardless.
	Plan PlanMode
}

// internal maps the public options onto the internal per-request options.
func (o QueryOptions) internal() join.QueryOpts {
	return join.QueryOpts{Theta: o.MinSimilarity, Workers: o.Workers, Plan: o.Plan.internal()}
}

// Index is a dynamic, concurrently servable join target over one
// collection: the interned pebble order, the collection's signatures and
// prepared verification records, and the ID-indexed inverted index. Built
// once, it serves any number of concurrent Probe/Query/QueryTopK calls
// while Insert and Remove mutate the catalog: writers publish immutable
// snapshots (Snapshot), so reads never block and always observe a
// consistent catalog state. Theta, Tau and Filter are fixed at build time.
//
// An Index may be partitioned (IndexOptions.Shards): records are hashed by
// stable ID across independent shards that share one global pebble order
// and one prepared-record cache, so mutations on different shards proceed
// in parallel, a rebuild pauses writers of one shard only, and queries fan
// out across all shards with results identical to the unsharded index.
type Index struct {
	inner *join.ShardedIndex
	tau   int
}

// IndexOptions configures the construction of an Index beyond the join
// parameters.
type IndexOptions struct {
	// Shards is the number of partitions the catalog is hashed across.
	// 0 selects GOMAXPROCS; 1 builds the classic single-partition index.
	// More shards mean more parallel mutation throughput and shorter
	// per-rebuild writer stalls, at the cost of one inverted index and
	// posting-array header block per shard.
	Shards int
	// Plan sets the index-wide planning default. PlanAuto (zero value)
	// installs the adaptive per-query planner; PlanFixed disables it
	// entirely, pinning the build-time Filter and Tau on every request
	// (individual requests cannot re-enable it).
	Plan PlanMode
}

// QueryMatch is one result of a single-string Query: the stable ID of the
// matched record and its unified similarity to the query. For records
// present since the build, the ID equals the record's position in the
// original collection; records added later get fresh IDs from Insert.
type QueryMatch struct {
	Record     int     `json:"record"`
	Similarity float64 `json:"similarity"`
}

// Index builds a probe-ready dynamic index over the collection. Theta, Tau
// and Filter are fixed at build time (AutoTau is ignored — suggesting τ
// needs a probe side; use SuggestTau and rebuild to re-tune). Each record's
// stable ID is its position in the input collection. The index is
// single-partition; IndexWith builds a sharded one.
func (j *Joiner) Index(records []string, opts JoinOptions) *Index {
	return j.IndexWith(records, opts, IndexOptions{Shards: 1})
}

// IndexWith is Index with explicit construction options; IndexOptions
// {Shards: 1} reproduces Index exactly, and Shards = 0 partitions across
// GOMAXPROCS shards.
func (j *Joiner) IndexWith(records []string, opts JoinOptions, iopts IndexOptions) *Index {
	tau := opts.Tau
	if tau < 1 {
		tau = 1
	}
	jopts := join.Options{
		Theta:   opts.Theta,
		Tau:     tau,
		Method:  opts.Filter.method(),
		Workers: opts.Workers,
		Plan:    iopts.Plan.internal(),
	}
	recs := strutil.NewCollection(records)
	return &Index{inner: j.joiner.BuildShardedIndex(recs, iopts.Shards, jopts, join.DynamicOptions{}), tau: tau}
}

// Insert adds a batch of records to the indexed catalog and returns their
// stable IDs. New signature keys are interned into an append-only dynamic
// region of the pebble order and the records become immediately visible to
// subsequent snapshots; once the appended mass (or tombstone mass, or
// segment-chain length) of a shard crosses an internal threshold that shard
// rebuilds, pausing only its own writers. On a sharded index the batch is
// grouped by destination shard and inserted in parallel, taking each shard's
// writer lock once. Insert is safe to call concurrently with reads and
// other writers.
func (ix *Index) Insert(records []string) []int { return ix.inner.InsertBatch(records) }

// Remove deletes the record with the given stable ID from the catalog,
// reporting whether it was present. The record is tombstoned — skipped by
// all subsequent snapshots — and physically dropped at its shard's next
// rebuild.
func (ix *Index) Remove(id int) bool { return ix.inner.Remove(id) }

// RemoveBatch deletes a batch of records by stable ID, reporting per ID
// whether it was present and live. IDs are grouped by shard and removed in
// parallel, each shard taking its writer lock — and publishing a snapshot —
// once for the whole batch.
func (ix *Index) RemoveBatch(ids []int) []bool { return ix.inner.RemoveBatch(ids) }

// Snapshot returns an immutable view of the catalog as of now. All View
// methods are lock-free and safe for unbounded concurrency; later Insert
// and Remove calls do not affect it. Probe/Query/QueryTopK on the Index are
// shorthands for the same calls on a fresh snapshot.
func (ix *Index) Snapshot() *View { return &View{inner: ix.inner.Snapshot(), tau: ix.tau} }

// Stats summarises the current state of the dynamic index.
func (ix *Index) Stats() IndexStats { return statsFromInternal(ix.inner.Stats()) }

// Probe joins a collection of strings against the current snapshot.
func (ix *Index) Probe(records []string) ([]Match, Stats) {
	return ix.Snapshot().Probe(records)
}

// ProbeSeq is the streaming form of Probe against the current snapshot,
// under the same contract as Joiner.JoinSeq: matches are yielded in
// completion order, breaking out stops the pipeline, and a ctx cancellation
// surfaces as one final error.
func (ix *Index) ProbeSeq(ctx context.Context, records []string) iter.Seq2[Match, error] {
	return ix.Snapshot().ProbeSeq(ctx, records)
}

// Query runs the filter-and-verify pipeline for a single string against
// the current snapshot and returns the matching records in ascending
// stable-ID order.
func (ix *Index) Query(q string) []QueryMatch { return ix.Snapshot().Query(q) }

// QueryCtx is Query with cooperative cancellation and per-request options;
// see View.QueryCtx.
func (ix *Index) QueryCtx(ctx context.Context, q string, opts QueryOptions) ([]QueryMatch, error) {
	return ix.Snapshot().QueryCtx(ctx, q, opts)
}

// QueryTopK returns the k best matches for q in the current snapshot,
// ordered by descending similarity.
func (ix *Index) QueryTopK(q string, k int) []QueryMatch {
	return ix.Snapshot().QueryTopK(q, k)
}

// QueryTopKCtx is QueryTopK with cooperative cancellation and per-request
// options; see View.QueryTopKCtx.
func (ix *Index) QueryTopKCtx(ctx context.Context, q string, opts QueryOptions) ([]QueryMatch, error) {
	return ix.Snapshot().QueryTopKCtx(ctx, q, opts)
}

// IndexStats describes one snapshot of a dynamic Index: catalog size and
// tombstone counts, the delta-segment chain, the shard count, the
// interned-key split between the frozen order prefix and the dynamic
// region, the rebuild history, and the prepared-record cache counters.
type IndexStats struct {
	// Records is the catalog length including tombstones; Live and Dead
	// split it.
	Records int `json:"records"`
	Live    int `json:"live"`
	Dead    int `json:"dead"`
	// Segments is the length of the delta-segment chain (one per Insert
	// batch since the last rebuild), summed over shards.
	Segments int `json:"segments"`
	// Shards is the number of index partitions.
	Shards int `json:"shards"`
	// FrozenKeys and DynamicKeys count the interned pebble keys in the
	// frozen order prefix and the append-only dynamic region.
	FrozenKeys  int `json:"frozen_keys"`
	DynamicKeys int `json:"dynamic_keys"`
	// Rebuilds counts re-finalize/rebuild cycles across all shards; Inserts
	// the records appended over the index lifetime.
	Rebuilds int `json:"rebuilds"`
	Inserts  int `json:"inserts"`
	// DenseKeys and SparseKeys split the non-empty posting lists of the
	// base inverted indexes by representation: packed bitmap form (lists
	// past the hybrid density cutoff) versus sorted slice form, summed over
	// shards.
	DenseKeys  int `json:"dense_keys"`
	SparseKeys int `json:"sparse_keys"`
	// ProbePostings counts posting entries processed by the count filter
	// over every probe served since the index was built;
	// ProbeBitsetTokens and ProbeSliceTokens split the probe signature
	// tokens by the posting-list representation they were served from
	// (packed bitmap versus sorted slice), summed over shards.
	ProbePostings     int64 `json:"probe_postings"`
	ProbeBitsetTokens int64 `json:"probe_bitset_tokens"`
	ProbeSliceTokens  int64 `json:"probe_slice_tokens"`
	// VerifiedCandidates, PrunedByBound and MemoHits are the cumulative
	// verify-phase counters over every query served since the index was
	// built: candidates whose similarity was actually computed, candidates
	// skipped by the sound upper bounds (the O(1) size-ratio bound or the
	// rising top-k floor), and segment-pair similarity evaluations answered
	// from the per-query memo. Summed over shards.
	VerifiedCandidates int64 `json:"verified_candidates"`
	PrunedByBound      int64 `json:"pruned_by_bound"`
	MemoHits           int64 `json:"memo_hits"`
	// CacheHits and CacheMisses are the cumulative counters of the
	// prepared-record cache consulted on Insert (shared across all shards;
	// both zero when the cache is disabled).
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Theta and Tau are the join parameters fixed at build time.
	Theta float64 `json:"theta"`
	Tau   int     `json:"tau"`
	// SuggestedTau is the adaptive planner's live τ suggestion: the
	// build-time τ until the first post-rebuild re-anchor, the observed
	// workload's most-chosen τ afterwards (0 when planning is disabled).
	SuggestedTau int `json:"suggested_tau,omitempty"`
	// Plans, PlanFallbacks and PlanReanchors count adaptive planning
	// decisions, fallbacks to the fixed build-time configuration, and
	// feedback re-anchors after rebuilds; PlanDecisions splits Plans by the
	// chosen configuration ("ufilter/t1", "auheur/t2", "audp/t3", ...). All
	// zero when planning is disabled (PlanFixed at build time).
	Plans         int64            `json:"plans,omitempty"`
	PlanFallbacks int64            `json:"plan_fallbacks,omitempty"`
	PlanReanchors int64            `json:"plan_reanchors,omitempty"`
	PlanDecisions map[string]int64 `json:"plan_decisions,omitempty"`
	// BuildTime is the construction time of the current base index, in
	// nanoseconds on the wire.
	BuildTime time.Duration `json:"build_time_ns"`
}

// statsFromInternal converts the internal snapshot statistics (the structs
// are field-identical; the conversion exists so the public API does not
// leak internal types).
func statsFromInternal(st join.DynamicStats) IndexStats { return IndexStats(st) }

// View is an immutable snapshot of an Index. Reads against a View are
// lock-free, safe for unbounded concurrency, and unaffected by concurrent
// Insert/Remove activity on the Index it came from.
type View struct {
	inner *join.ShardedView
	tau   int
}

// Stats returns the snapshot's statistics.
func (v *View) Stats() IndexStats { return statsFromInternal(v.inner.Stats()) }

// Probe joins a collection of strings against the snapshot. Match.S is the
// stable ID of the indexed record, Match.T the position in the probe
// collection.
func (v *View) Probe(records []string) ([]Match, Stats) {
	pairs, jstats := v.inner.Probe(strutil.NewCollection(records))
	return convertPairs(pairs, jstats, v.tau)
}

// ProbeSeq is the streaming form of Probe, under the same contract as
// Joiner.JoinSeq: matches are yielded in completion order as the parallel
// verify stage confirms them, breaking out of the range loop stops the
// pipeline, and a ctx cancellation or deadline surfaces as one final
// non-nil error.
func (v *View) ProbeSeq(ctx context.Context, records []string) iter.Seq2[Match, error] {
	return func(yield func(Match, error) bool) {
		forwardPairs(v.inner.ProbeSeq(ctx, strutil.NewCollection(records)), yield)
	}
}

// Query runs the filter-and-verify pipeline for a single string and
// returns the matching records in ascending stable-ID order. An empty (or
// all-whitespace) query returns no matches without touching the index.
func (v *View) Query(q string) []QueryMatch {
	hits := v.inner.ProbeRecord(strutil.Tokenize(q))
	return convertHits(hits)
}

// QueryCtx is Query with cooperative cancellation and per-request overrides:
// verification checks ctx between candidates (aborting every shard of a
// sharded index on the first cancellation) and opts may raise the similarity
// threshold or bound the request's verification parallelism for this call
// only. opts.K is ignored — every match is returned; use QueryTopKCtx for a
// bounded result.
func (v *View) QueryCtx(ctx context.Context, q string, opts QueryOptions) ([]QueryMatch, error) {
	hits, err := v.inner.ProbeRecordCtx(ctx, strutil.Tokenize(q), opts.internal())
	if err != nil {
		return nil, err
	}
	return convertHits(hits), nil
}

// QueryTopK returns the k best matches for q, ordered by descending
// similarity (ascending ID on ties). The candidate scan is thresholded at
// the index θ and a bounded heap keeps memory O(k); on a sharded index the
// per-shard top-k streams are merged through one more k-bounded heap. k ≤ 0
// and empty queries return an empty slice without touching the index.
func (v *View) QueryTopK(q string, k int) []QueryMatch {
	if k <= 0 {
		return []QueryMatch{}
	}
	return convertHits(v.inner.QueryTopK(strutil.Tokenize(q), k))
}

// QueryTopKCtx is QueryTopK with cooperative cancellation and per-request
// overrides (the result size comes from opts.K). Verification checks ctx
// between candidates, aborting every shard of a sharded index on the first
// cancellation; opts may also raise the similarity threshold or bound this
// request's verification parallelism.
func (v *View) QueryTopKCtx(ctx context.Context, q string, opts QueryOptions) ([]QueryMatch, error) {
	if opts.K <= 0 {
		return []QueryMatch{}, ctx.Err()
	}
	hits, err := v.inner.QueryTopKCtx(ctx, strutil.Tokenize(q), opts.K, opts.internal())
	if err != nil {
		return nil, err
	}
	return convertHits(hits), nil
}

// convertHits maps internal query results onto the public type.
func convertHits(hits []join.QueryMatch) []QueryMatch {
	out := make([]QueryMatch, len(hits))
	for i, h := range hits {
		out[i] = QueryMatch{Record: h.Record, Similarity: h.Similarity}
	}
	return out
}

// SuggestTau runs the sampling-based estimator of Section 4 and returns the
// overlap constraint with the minimal estimated join cost. opts.Theta sets
// the join threshold, opts.Seed the sampler seed (0 = reproducible default),
// and opts.Filter the signature method whose cost is estimated; the U-Filter
// (for which τ is fixed at 1) is estimated as the heuristic AU-Filter, so
// the zero-value Filter keeps the previous behaviour.
func (j *Joiner) SuggestTau(s, t []string, opts JoinOptions) int {
	tau, _ := j.SuggestTauCtx(context.Background(), s, t, opts)
	return tau
}

// SuggestTauCtx is SuggestTau with deadline awareness: the sampling loop of
// Algorithm 7 checks ctx between rounds and stops early when it is done, so
// a request deadline bounds the suggestion stage too. The returned τ is the
// best recommendation from the rounds that completed; the error is the
// context error when the loop was truncated (callers that can tolerate a
// lower-confidence suggestion may use the τ anyway).
func (j *Joiner) SuggestTauCtx(ctx context.Context, s, t []string, opts JoinOptions) (int, error) {
	recsS := strutil.NewCollection(s)
	recsT := strutil.NewCollection(t)
	method := opts.Filter.method()
	if method == pebble.UFilter {
		method = pebble.AUHeuristic
	}
	rec, err := estimator.SuggestCtx(ctx, j.joiner, recsS, recsT,
		join.Options{Theta: opts.Theta, Method: method},
		estimator.Config{Seed: opts.estimatorSeed()})
	return rec.BestTau, err
}

func (j *Joiner) joinRecords(recsS, recsT []strutil.Record, opts JoinOptions, self bool) ([]Match, Stats) {
	var suggestionTime time.Duration
	start := time.Now()
	// The context is Background, so option resolution cannot fail.
	jopts, _ := j.resolveSeqOptions(context.Background(), recsS, recsT, opts)
	if opts.AutoTau {
		suggestionTime = time.Since(start)
	}
	var pairs []join.Pair
	var jstats join.Stats
	if self {
		pairs, jstats = j.joiner.SelfJoin(recsS, jopts)
	} else {
		pairs, jstats = j.joiner.Join(recsS, recsT, jopts)
	}
	out, stats := convertPairs(pairs, jstats, jopts.Tau)
	stats.SuggestionTime = suggestionTime
	return out, stats
}

// convertPairs maps internal join results onto the public types.
func convertPairs(pairs []join.Pair, jstats join.Stats, tau int) ([]Match, Stats) {
	if jstats.PlanTau > 0 {
		// The adaptive planner picked this batch's τ; report what actually ran.
		tau = jstats.PlanTau
	}
	stats := Stats{
		Candidates:         jstats.Candidates,
		ShardCandidates:    jstats.ShardCandidates,
		Results:            len(pairs),
		FilterPostings:     jstats.ProcessedPairs,
		BitsetTokens:       jstats.BitsetTokens,
		SliceTokens:        jstats.SliceTokens,
		VerifiedCandidates: jstats.VerifiedCandidates,
		PrunedByBound:      jstats.PrunedByBound,
		MemoHits:           jstats.MemoHits,
		SuggestedTau:       tau,
		FilterTime:         jstats.SignatureTime + jstats.FilterTime,
		VerifyTime:         jstats.VerifyTime,
	}
	out := make([]Match, len(pairs))
	for i, p := range pairs {
		out[i] = Match{S: p.S, T: p.T, Similarity: p.Similarity}
	}
	return out, stats
}
