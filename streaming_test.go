package aujoin

import (
	"context"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

// genStrings builds a corpus over the paper vocabulary, dense enough that
// joins at moderate θ have matches.
func genStrings(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"coffee", "shop", "latte", "espresso", "cafe", "helsinki",
		"helsingki", "cake", "apple", "gateau", "bakery", "db", "database", "systems"}
	out := make([]string, n)
	for i := range out {
		l := 2 + rng.Intn(3)
		toks := make([]string, l)
		for k := range toks {
			toks[k] = vocab[rng.Intn(len(vocab))]
		}
		out[i] = strings.Join(toks, " ")
	}
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].S != ms[b].S {
			return ms[a].S < ms[b].S
		}
		return ms[a].T < ms[b].T
	})
}

// equalMatches compares match slices treating nil and empty as equal (the
// batch API returns an allocated empty slice, a drained stream nil).
func equalMatches(a, b []Match) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestJoinSeqMatchesJoin pins the public streaming contract: collecting
// JoinSeq (and SelfJoinSeq) and sorting by (S, T) reproduces the batch
// result exactly, across all three filters and θ ∈ {0.7, 0.8, 0.9}.
func TestJoinSeqMatchesJoin(t *testing.T) {
	j := paperJoiner(t)
	left := genStrings(30, 1)
	right := genStrings(30, 2)
	for _, filter := range []Filter{UFilter, AUFilterHeuristic, AUFilterDP} {
		for _, theta := range []float64{0.7, 0.8, 0.9} {
			opts := JoinOptions{Theta: theta, Tau: 2, Filter: filter}
			want, _ := j.Join(left, right, opts)
			var got []Match
			for m, err := range j.JoinSeq(context.Background(), left, right, opts) {
				if err != nil {
					t.Fatalf("%v θ=%v: JoinSeq error: %v", filter, theta, err)
				}
				got = append(got, m)
			}
			sortMatches(got)
			if !equalMatches(got, want) {
				t.Errorf("%v θ=%v: collect(JoinSeq) = %v, want %v", filter, theta, got, want)
			}

			wantSelf, _ := j.SelfJoin(left, opts)
			var gotSelf []Match
			for m, err := range j.SelfJoinSeq(context.Background(), left, opts) {
				if err != nil {
					t.Fatalf("%v θ=%v: SelfJoinSeq error: %v", filter, theta, err)
				}
				gotSelf = append(gotSelf, m)
			}
			sortMatches(gotSelf)
			if !equalMatches(gotSelf, wantSelf) {
				t.Errorf("%v θ=%v: collect(SelfJoinSeq) = %v, want %v", filter, theta, gotSelf, wantSelf)
			}
		}
	}
}

// TestJoinSeqCancelled pins the public error contract: a cancelled context
// surfaces as exactly one yielded non-nil error, with AutoTau's sampling
// stage covered too.
func TestJoinSeqCancelled(t *testing.T) {
	j := paperJoiner(t)
	left := genStrings(20, 3)
	right := genStrings(20, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opts := range []JoinOptions{
		{Theta: 0.7, Tau: 2},
		{Theta: 0.7, AutoTau: true},
	} {
		errs := 0
		for _, err := range j.JoinSeq(ctx, left, right, opts) {
			if err == nil {
				t.Fatalf("opts %+v: cancelled JoinSeq yielded a match", opts)
			}
			errs++
		}
		if errs != 1 {
			t.Errorf("opts %+v: cancelled JoinSeq yielded %d errors, want 1", opts, errs)
		}
	}
}

// TestProbeSeqMatchesProbe pins View.ProbeSeq against the batch Probe on
// sharded and unsharded indexes.
func TestProbeSeqMatchesProbe(t *testing.T) {
	j := paperJoiner(t)
	catalog := genStrings(40, 5)
	batch := genStrings(25, 6)
	for _, shards := range []int{1, 3} {
		ix := j.IndexWith(catalog, JoinOptions{Theta: 0.75, Tau: 2}, IndexOptions{Shards: shards})
		want, wantStats := ix.Probe(batch)
		var got []Match
		for m, err := range ix.ProbeSeq(context.Background(), batch) {
			if err != nil {
				t.Fatalf("shards=%d: ProbeSeq error: %v", shards, err)
			}
			got = append(got, m)
		}
		sortMatches(got)
		if !equalMatches(got, want) {
			t.Errorf("shards=%d: collect(ProbeSeq) = %v, want %v", shards, got, want)
		}
		if shards > 1 {
			sum := 0
			for _, c := range wantStats.ShardCandidates {
				sum += c
			}
			if len(wantStats.ShardCandidates) != shards || sum != wantStats.Candidates {
				t.Errorf("shards=%d: ShardCandidates %v does not sum to Candidates %d",
					shards, wantStats.ShardCandidates, wantStats.Candidates)
			}
		}
	}
}

// TestQueryCtxMatchesQuery pins the per-request query path against the batch
// one, including the K and MinSimilarity overrides.
func TestQueryCtxMatchesQuery(t *testing.T) {
	j := paperJoiner(t)
	catalog := genStrings(40, 7)
	ix := j.Index(catalog, JoinOptions{Theta: 0.7, Tau: 2})
	bg := context.Background()
	for _, q := range genStrings(10, 8) {
		want := ix.Query(q)
		got, err := ix.QueryCtx(bg, q, QueryOptions{})
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("QueryCtx(%q) = %v (%v), want %v", q, got, err, want)
		}
		wantTop := ix.QueryTopK(q, 3)
		gotTop, err := ix.QueryTopKCtx(bg, q, QueryOptions{K: 3})
		if err != nil || !reflect.DeepEqual(gotTop, wantTop) {
			t.Fatalf("QueryTopKCtx(%q) = %v (%v), want %v", q, gotTop, err, wantTop)
		}
		strict, err := ix.QueryCtx(bg, q, QueryOptions{MinSimilarity: 0.9})
		if err != nil {
			t.Fatalf("QueryCtx(min_sim): %v", err)
		}
		var wantStrict []QueryMatch
		for _, m := range want {
			if m.Similarity >= 0.9 {
				wantStrict = append(wantStrict, m)
			}
		}
		if !reflect.DeepEqual(append([]QueryMatch(nil), strict...), wantStrict) {
			t.Errorf("QueryCtx(%q, min_sim=0.9) = %v, want %v", q, strict, wantStrict)
		}
	}
	cancelled, cancel := context.WithCancel(bg)
	cancel()
	if _, err := ix.QueryCtx(cancelled, catalog[0], QueryOptions{}); err != context.Canceled {
		t.Errorf("cancelled QueryCtx error = %v", err)
	}
}

// TestQueryEmptyString is the public regression test for empty-string
// queries: they must return an empty result on every path rather than
// probing with a zero signature.
func TestQueryEmptyString(t *testing.T) {
	j := paperJoiner(t)
	ix := j.Index(genStrings(20, 9), JoinOptions{Theta: 0.7, Tau: 1})
	for _, q := range []string{"", "   ", "\t\n"} {
		if got := ix.Query(q); len(got) != 0 {
			t.Errorf("Query(%q) = %v, want empty", q, got)
		}
		if got := ix.QueryTopK(q, 5); len(got) != 0 {
			t.Errorf("QueryTopK(%q) = %v, want empty", q, got)
		}
		if got, err := ix.QueryCtx(context.Background(), q, QueryOptions{}); err != nil || len(got) != 0 {
			t.Errorf("QueryCtx(%q) = %v, %v, want empty", q, got, err)
		}
		if got, err := ix.QueryTopKCtx(context.Background(), q, QueryOptions{K: 5}); err != nil || len(got) != 0 {
			t.Errorf("QueryTopKCtx(%q) = %v, %v, want empty", q, got, err)
		}
	}
}

// TestSuggestTauCtx pins the deadline-aware τ suggestion: Background matches
// SuggestTau, and a cancelled context reports the truncation while still
// returning a sound τ.
func TestSuggestTauCtx(t *testing.T) {
	j := paperJoiner(t)
	left := genStrings(60, 10)
	right := genStrings(60, 11)
	opts := JoinOptions{Theta: 0.8}
	want := j.SuggestTau(left, right, opts)
	got, err := j.SuggestTauCtx(context.Background(), left, right, opts)
	if err != nil || got != want {
		t.Fatalf("SuggestTauCtx = %d (%v), want %d", got, err, want)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	tau, err := j.SuggestTauCtx(ctx, left, right, opts)
	if err == nil {
		t.Fatal("expired SuggestTauCtx reported no error")
	}
	if tau < 1 {
		t.Errorf("expired SuggestTauCtx returned τ=%d", tau)
	}
}
