package aujoin

import (
	"math"
	"strings"
	"testing"
)

func paperJoiner(t *testing.T) *Joiner {
	t.Helper()
	j, err := NewStrict(
		WithSynonym("coffee shop", "cafe", 1),
		WithSynonym("cake", "gateau", 1),
		WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "espresso"),
		WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "latte"),
		WithTaxonomyPath("wikipedia", "food", "cake", "apple cake"),
	)
	if err != nil {
		t.Fatalf("NewStrict: %v", err)
	}
	return j
}

func TestSimilarityPOIExample(t *testing.T) {
	j := paperJoiner(t)
	got := j.Similarity("coffee shop latte Helsingki", "espresso cafe Helsinki")
	want := (1 + 0.8 + 2.0/3.0) / 3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Similarity = %v, want %v", got, want)
	}
	exact, complete := j.SimilarityExact("coffee shop latte Helsingki", "espresso cafe Helsinki")
	if !complete || math.Abs(exact-want) > 1e-9 {
		t.Errorf("SimilarityExact = %v (complete=%v), want %v", exact, complete, want)
	}
}

func TestJoinAndSelfJoin(t *testing.T) {
	j := paperJoiner(t)
	left := []string{"coffee shop latte Helsingki", "apple cake bakery", "nothing in common"}
	right := []string{"espresso cafe Helsinki", "cake gateau bakery", "completely different"}
	matches, stats := j.Join(left, right, JoinOptions{Theta: 0.75, Tau: 2, Filter: AUFilterDP})
	found := false
	for _, m := range matches {
		if m.S == 0 && m.T == 0 && m.Similarity >= 0.75 {
			found = true
		}
	}
	if !found {
		t.Errorf("POI pair missing from matches %v", matches)
	}
	if stats.Results != len(matches) || stats.Candidates < len(matches) {
		t.Errorf("stats inconsistent: %+v", stats)
	}
	if stats.Total() <= 0 {
		t.Error("total time should be positive")
	}

	self, _ := j.SelfJoin([]string{"latte art", "latte art", "espresso bar"}, JoinOptions{Theta: 0.9})
	dup := false
	for _, m := range self {
		if m.S == 0 && m.T == 1 {
			dup = true
		}
		if m.S >= m.T {
			t.Errorf("self-join pair not ordered: %+v", m)
		}
	}
	if !dup {
		t.Errorf("duplicate pair missing from self-join %v", self)
	}
}

func TestIndexProbeAndQuery(t *testing.T) {
	j := paperJoiner(t)
	catalog := []string{"coffee shop latte Helsingki", "apple cake bakery", "nothing in common"}
	ix := j.Index(catalog, JoinOptions{Theta: 0.75, Tau: 2, Filter: AUFilterDP})

	// Probing the prebuilt index must agree with the one-shot join.
	batch := []string{"espresso cafe Helsinki", "cake gateau bakery"}
	want, _ := j.Join(catalog, batch, JoinOptions{Theta: 0.75, Tau: 2, Filter: AUFilterDP})
	got, stats := ix.Probe(batch)
	if len(got) != len(want) {
		t.Fatalf("Probe = %v, want %v", got, want)
	}
	for i := range got {
		if got[i].S != want[i].S || got[i].T != want[i].T {
			t.Errorf("Probe[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if stats.Results != len(got) {
		t.Errorf("stats.Results = %d, want %d", stats.Results, len(got))
	}

	// A second probe reuses the index; a fresh query serves single lookups.
	if again, _ := ix.Probe(batch); len(again) != len(got) {
		t.Error("repeated probe differs")
	}
	hits := ix.Query("espresso cafe Helsinki")
	found := false
	for _, h := range hits {
		if h.Record == 0 && h.Similarity >= 0.75 {
			found = true
		}
	}
	if !found {
		t.Errorf("Query missed the POI record: %v", hits)
	}
	if hits := ix.Query("zzz qqq"); len(hits) != 0 {
		t.Errorf("unrelated query returned %v", hits)
	}
}

func TestIndexInsertRemoveSnapshot(t *testing.T) {
	j := paperJoiner(t)
	catalog := []string{"coffee shop latte Helsingki", "apple cake bakery", "nothing in common"}
	ix := j.Index(catalog, JoinOptions{Theta: 0.75, Tau: 2, Filter: AUFilterDP})

	before := ix.Snapshot()
	ids := ix.Insert([]string{"espresso cafe Helsinki central"})
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("Insert ids = %v, want [3]", ids)
	}

	// The pre-insert snapshot must not see the new record; a fresh one must.
	for _, h := range before.Query("espresso cafe Helsinki central") {
		if h.Record == 3 {
			t.Errorf("stale snapshot sees the inserted record: %v", h)
		}
	}
	hits := ix.Query("espresso cafe Helsinki central")
	found := false
	for _, h := range hits {
		if h.Record == 3 && h.Similarity > 0.99 {
			found = true
		}
	}
	if !found {
		t.Fatalf("query after insert missed the new record: %v", hits)
	}

	// QueryTopK ranks the exact match first.
	top := ix.QueryTopK("espresso cafe Helsinki central", 1)
	if len(top) != 1 || top[0].Record != 3 {
		t.Fatalf("QueryTopK = %v, want the inserted record first", top)
	}

	// Removing tombstones the record for new snapshots only.
	mid := ix.Snapshot()
	if !ix.Remove(3) {
		t.Fatal("Remove(3) reported absent")
	}
	if ix.Remove(3) {
		t.Fatal("Remove(3) succeeded twice")
	}
	midSees := false
	for _, h := range mid.Query("espresso cafe Helsinki central") {
		if h.Record == 3 {
			midSees = true
		}
	}
	if !midSees {
		t.Error("pre-remove snapshot lost the record")
	}
	for _, h := range ix.Query("espresso cafe Helsinki central") {
		if h.Record == 3 {
			t.Error("removed record still served")
		}
	}

	// The tombstone may already be compacted away by a threshold rebuild,
	// so only the live count and insert counter are pinned exactly.
	st := ix.Stats()
	if st.Live != 3 || st.Inserts != 1 {
		t.Errorf("Stats = %+v, want 3 live / 1 inserted", st)
	}
}

func TestAutoTauAndSuggestTau(t *testing.T) {
	j := paperJoiner(t)
	var left, right []string
	for i := 0; i < 30; i++ {
		left = append(left, "coffee shop latte Helsingki")
		right = append(right, "espresso cafe Helsinki")
		left = append(left, "apple cake bakery")
		right = append(right, "cake gateau corner")
	}
	tau := j.SuggestTau(left, right, JoinOptions{Theta: 0.8})
	if tau < 1 {
		t.Errorf("SuggestTau = %d", tau)
	}
	// The default seed is fixed, so suggestions are reproducible; an
	// explicit seed must be honoured without breaking validity.
	if again := j.SuggestTau(left, right, JoinOptions{Theta: 0.8}); again != tau {
		t.Errorf("SuggestTau not reproducible: %d vs %d", tau, again)
	}
	if seeded := j.SuggestTau(left, right, JoinOptions{Theta: 0.8, Seed: 42}); seeded < 1 {
		t.Errorf("SuggestTau(seed 42) = %d", seeded)
	}
	matches, stats := j.Join(left, right, JoinOptions{Theta: 0.8, AutoTau: true})
	if stats.SuggestedTau < 1 {
		t.Errorf("SuggestedTau = %d", stats.SuggestedTau)
	}
	if len(matches) == 0 {
		t.Error("auto-τ join found nothing")
	}
}

func TestMeasureRestrictionOption(t *testing.T) {
	full := paperJoiner(t)
	jOnly := New(WithMeasures("J"))
	s, u := "coffee shop latte Helsingki", "espresso cafe Helsinki"
	if jOnly.Similarity(s, u) >= full.Similarity(s, u) {
		t.Error("Jaccard-only similarity should be below the unified one on the POI pair")
	}
}

func TestLoadersAndErrors(t *testing.T) {
	j, err := NewStrict(
		WithSynonymsFrom(strings.NewReader("coffee shop\tcafe\t1\n")),
		WithTaxonomyFrom(strings.NewReader("root\t\ndrinks\troot\nespresso\tdrinks\n")),
	)
	if err != nil {
		t.Fatalf("NewStrict with loaders: %v", err)
	}
	if got := j.Similarity("coffee shop", "cafe"); got != 1 {
		t.Errorf("loaded synonym similarity = %v", got)
	}

	if _, err := NewStrict(WithSynonym("", "x", 1)); err == nil {
		t.Error("expected error for empty synonym side")
	}
	if _, err := NewStrict(WithGramLength(0)); err == nil {
		t.Error("expected error for zero gram length")
	}
	if _, err := NewStrict(WithApproximationT(0.5)); err == nil {
		t.Error("expected error for t ≤ 1")
	}
	if _, err := NewStrict(WithTaxonomyPath()); err == nil {
		t.Error("expected error for empty taxonomy path")
	}
	if _, err := NewStrict(
		WithTaxonomyPath("rootA", "x"),
		WithTaxonomyPath("rootB", "y"),
	); err == nil {
		t.Error("expected error for inconsistent taxonomy roots")
	}
	if _, err := NewStrict(WithSynonymsFrom(strings.NewReader("bad-line\n"))); err == nil {
		t.Error("expected error for malformed synonym file")
	}
	if _, err := NewStrict(WithTaxonomyFrom(strings.NewReader("child\tmissing\n"))); err == nil {
		t.Error("expected error for malformed taxonomy file")
	}
}

func TestNewPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New should panic on invalid options")
		}
	}()
	New(WithGramLength(-1))
}

func TestFilterNames(t *testing.T) {
	if UFilter.String() != "U-Filter" {
		t.Error("UFilter name")
	}
	if AUFilterHeuristic.String() != "AU-Filter (heuristics)" {
		t.Error("heuristic name")
	}
	if AUFilterDP.String() != "AU-Filter (DP)" {
		t.Error("DP name")
	}
}

func TestJoinOptionsDefaults(t *testing.T) {
	j := paperJoiner(t)
	// Tau < 1 and default filter must still work.
	matches, stats := j.Join([]string{"espresso"}, []string{"espresso"}, JoinOptions{Theta: 0.9})
	if len(matches) != 1 || stats.SuggestedTau != 1 {
		t.Errorf("defaults broken: %v %+v", matches, stats)
	}
}

// TestIndexShardedMatchesSingle pins the public shard-count invariance: an
// index partitioned across several shards must serve exactly what the
// classic single-partition index serves, through Probe, Query and QueryTopK,
// before and after batched mutations.
func TestIndexShardedMatchesSingle(t *testing.T) {
	j := paperJoiner(t)
	catalog := []string{
		"coffee shop latte Helsingki", "apple cake bakery", "nothing in common",
		"espresso machines shop", "database systems course", "corner market town",
	}
	opts := JoinOptions{Theta: 0.75, Tau: 2, Filter: AUFilterDP}
	single := j.Index(catalog, opts)
	sharded := j.IndexWith(catalog, opts, IndexOptions{Shards: 3})
	if got := sharded.Stats().Shards; got != 3 {
		t.Fatalf("Shards = %d, want 3", got)
	}

	mutate := func(ix *Index) {
		ids := ix.Insert([]string{"espresso cafe Helsinki central", "apple gateau bakery", "coffee corner shop"})
		removed := ix.RemoveBatch([]int{ids[1], 1, 999})
		if want := []bool{true, true, false}; len(removed) != 3 || removed[0] != want[0] || removed[1] != want[1] || removed[2] != want[2] {
			t.Fatalf("RemoveBatch = %v, want %v", removed, want)
		}
	}
	mutate(single)
	mutate(sharded)

	batch := []string{"espresso cafe Helsinki", "cake gateau bakery", "coffee shop latte"}
	wantPairs, _ := single.Probe(batch)
	gotPairs, stats := sharded.Probe(batch)
	if len(gotPairs) != len(wantPairs) {
		t.Fatalf("sharded Probe = %v, want %v", gotPairs, wantPairs)
	}
	for i := range gotPairs {
		if gotPairs[i] != wantPairs[i] {
			t.Fatalf("sharded Probe[%d] = %+v, want %+v", i, gotPairs[i], wantPairs[i])
		}
	}
	if stats.Results != len(gotPairs) {
		t.Errorf("stats.Results = %d, want %d", stats.Results, len(gotPairs))
	}
	for _, q := range append(batch, "zzz qqq") {
		wantQ := single.Query(q)
		gotQ := sharded.Query(q)
		if len(gotQ) != len(wantQ) {
			t.Fatalf("sharded Query(%q) = %v, want %v", q, gotQ, wantQ)
		}
		for i := range gotQ {
			if gotQ[i] != wantQ[i] {
				t.Fatalf("sharded Query(%q)[%d] = %+v, want %+v", q, i, gotQ[i], wantQ[i])
			}
		}
		for _, k := range []int{1, 2, 10} {
			wantK := single.QueryTopK(q, k)
			gotK := sharded.QueryTopK(q, k)
			if len(gotK) != len(wantK) {
				t.Fatalf("sharded QueryTopK(%q, %d) = %v, want %v", q, k, gotK, wantK)
			}
			for i := range gotK {
				if gotK[i] != wantK[i] {
					t.Fatalf("sharded QueryTopK(%q, %d)[%d] = %+v, want %+v", q, k, i, gotK[i], wantK[i])
				}
			}
		}
	}

	// The shared prepared cache across shards surfaces its counters.
	if st := sharded.Stats(); st.CacheMisses == 0 {
		t.Errorf("expected cache misses after inserts: %+v", st)
	}
}

// TestQueryTopKDegenerateK pins the k ≤ 0 guard at the public API: an empty
// slice, no panic, on both sharded and single indexes.
func TestQueryTopKDegenerateK(t *testing.T) {
	j := paperJoiner(t)
	catalog := []string{"coffee shop latte Helsingki", "apple cake bakery"}
	for _, shards := range []int{1, 2} {
		ix := j.IndexWith(catalog, JoinOptions{Theta: 0.75, Tau: 2}, IndexOptions{Shards: shards})
		for _, k := range []int{0, -1, -100} {
			if got := ix.QueryTopK("coffee shop latte", k); len(got) != 0 {
				t.Errorf("shards=%d QueryTopK(k=%d) = %v, want empty", shards, k, got)
			}
			if got := ix.Snapshot().QueryTopK("coffee shop latte", k); len(got) != 0 {
				t.Errorf("shards=%d View.QueryTopK(k=%d) = %v, want empty", shards, k, got)
			}
		}
	}
}
