// Command quickstart demonstrates the two entry points of the library —
// Similarity for one pair of strings and Join for two collections — on the
// paper's running example (Figure 1 and Section 2): coffee-shop POI strings
// matched through q-gram, synonym-rule and taxonomy similarity at once.
package main

import (
	"fmt"

	"github.com/aujoin/aujoin"
)

func main() {
	// Knowledge sources: a couple of synonym rules and a tiny IS-A
	// taxonomy of coffee-related entities.
	j := aujoin.New(
		aujoin.WithSynonym("coffee shop", "cafe", 1.0),
		aujoin.WithSynonym("cake", "gateau", 1.0),
		aujoin.WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "espresso"),
		aujoin.WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "latte"),
		aujoin.WithTaxonomyPath("wikipedia", "food", "cake", "apple cake"),
	)

	// The two points of interest from Figure 1 of the paper: they mix a
	// misspelling, a synonym and a taxonomy relation.
	s := "coffee shop latte Helsingki"
	t := "espresso cafe Helsinki"
	fmt.Printf("unified similarity(%q, %q) = %.3f\n", s, t, j.Similarity(s, t))

	exact, complete := j.SimilarityExact(s, t)
	fmt.Printf("exact similarity = %.3f (complete=%v)\n", exact, complete)

	// A small join between two collections.
	left := []string{
		"coffee shop latte Helsingki",
		"apple cake bakery",
		"database systems lecture",
	}
	right := []string{
		"espresso cafe Helsinki",
		"cake gateau bakery",
		"totally unrelated record",
	}
	matches, stats := j.Join(left, right, aujoin.JoinOptions{Theta: 0.75, Tau: 2, Filter: aujoin.AUFilterDP})
	fmt.Printf("\njoin at θ=0.75 found %d pairs (candidates: %d, time: %v)\n",
		len(matches), stats.Candidates, stats.Total())
	for _, m := range matches {
		fmt.Printf("  %-30q ~ %-28q sim=%.3f\n", left[m.S], right[m.T], m.Similarity)
	}
}
