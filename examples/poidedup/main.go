// Command poidedup demonstrates deduplicating a collection of points of
// interest (POIs) with SelfJoin: the motivating scenario of the paper's
// introduction (Section 1), where the same venue appears with typos,
// abbreviations and category-level variants that no single similarity
// measure catches alone.
package main

import (
	"fmt"

	"github.com/aujoin/aujoin"
)

func main() {
	j := aujoin.New(
		aujoin.WithSynonym("coffee shop", "cafe", 1.0),
		aujoin.WithSynonym("st", "street", 1.0),
		aujoin.WithSynonym("ctr", "center", 1.0),
		aujoin.WithSynonym("natl", "national", 1.0),
		aujoin.WithTaxonomyPath("poi", "food venue", "coffee venue", "espresso bar"),
		aujoin.WithTaxonomyPath("poi", "food venue", "coffee venue", "latte bar"),
		aujoin.WithTaxonomyPath("poi", "food venue", "bakery"),
		aujoin.WithTaxonomyPath("poi", "culture venue", "museum"),
		aujoin.WithTaxonomyPath("poi", "culture venue", "gallery"),
	)

	pois := []string{
		"espresso bar mannerheim street helsinki",
		"latte bar mannerheim st helsinki",
		"coffee shop aleksanterinkatu helsinki",
		"cafe aleksanterinkatu helsingki",
		"natl museum of finland",
		"national museum of finland",
		"design museum helsinki",
		"kiasma gallery helsinki",
		"central railway station helsinki",
	}

	// Let the estimator pick the overlap constraint τ, then self-join.
	matches, stats := j.SelfJoin(pois, aujoin.JoinOptions{
		Theta:   0.72,
		AutoTau: true,
		Filter:  aujoin.AUFilterDP,
	})

	fmt.Printf("self-join of %d POIs at θ=0.72 (τ=%d, %d candidates, %v total)\n",
		len(pois), stats.SuggestedTau, stats.Candidates, stats.Total())
	fmt.Println("likely duplicates:")
	for _, m := range matches {
		fmt.Printf("  %.3f  %q\n         %q\n", m.Similarity, pois[m.S], pois[m.T])
	}
}
