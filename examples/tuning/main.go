// Command tuning demonstrates the parameter-recommendation framework of
// Section 4 (Algorithm 7): it compares the join time obtained with the
// estimator-suggested overlap constraint τ against every fixed τ in the
// candidate universe, reproducing the shape of the paper's Figure 8 study.
package main

import (
	"fmt"
	"time"

	"github.com/aujoin/aujoin"
	"github.com/aujoin/aujoin/internal/datagen"
)

func main() {
	gen := datagen.New(datagen.WIKILike(600, 11))
	ds := gen.Generate()

	left := make([]string, len(ds.S))
	for i, r := range ds.S {
		left[i] = r.Raw
	}
	right := make([]string, len(ds.T))
	for i, r := range ds.T {
		right[i] = r.Raw
	}

	j := aujoin.New() // plain syntactic matching is enough to show the trade-off
	theta := 0.85

	fmt.Println("fixed τ sweep (AU-Filter DP):")
	bestFixed := time.Duration(0)
	for tau := 1; tau <= 5; tau++ {
		start := time.Now()
		matches, stats := j.Join(left, right, aujoin.JoinOptions{Theta: theta, Tau: tau})
		elapsed := time.Since(start)
		if bestFixed == 0 || elapsed < bestFixed {
			bestFixed = elapsed
		}
		fmt.Printf("  τ=%d: %4d candidates, %3d results, %8v\n", tau, stats.Candidates, len(matches), elapsed)
	}

	suggested := j.SuggestTau(left, right, aujoin.JoinOptions{Theta: theta})
	start := time.Now()
	matches, stats := j.Join(left, right, aujoin.JoinOptions{Theta: theta, Tau: suggested})
	elapsed := time.Since(start)
	fmt.Printf("\nestimator suggests τ=%d: %d candidates, %d results, %v (best fixed: %v)\n",
		suggested, stats.Candidates, len(matches), elapsed, bestFixed)
}
