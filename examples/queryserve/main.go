// Command queryserve demonstrates the build-once/probe-many API of the
// Section 3 filtering pipeline — a catalog is indexed once (signatures,
// interned pebble order, inverted index), then served with single-string
// queries and batch probes without rebuilding — and the dynamic serving
// layer built on top of it: Insert/Remove mutate the catalog online while
// immutable snapshots keep queries lock-free and consistent (this
// implementation's extension beyond the paper; see ARCHITECTURE.md).
package main

import (
	"fmt"

	"github.com/aujoin/aujoin"
)

func main() {
	j := aujoin.New(
		aujoin.WithSynonym("coffee shop", "cafe", 1.0),
		aujoin.WithSynonym("st", "street", 1.0),
		aujoin.WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "espresso"),
		aujoin.WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "latte"),
	)

	catalog := []string{
		"coffee shop latte Helsingki",
		"espresso bar mannerheim street",
		"apple cake bakery",
		"national museum of finland",
	}
	ix := j.Index(catalog, aujoin.JoinOptions{Theta: 0.75, Tau: 2, Filter: aujoin.AUFilterDP})

	// Single-string lookups reuse the prebuilt index and pooled scratch.
	for _, q := range []string{"espresso cafe Helsinki", "latte bar mannerheim st", "apple pie"} {
		fmt.Printf("query %q:\n", q)
		for _, h := range ix.Query(q) {
			fmt.Printf("  %.3f  %q\n", h.Similarity, catalog[h.Record])
		}
	}

	// Batches probe the same index; stats exclude the one-off build cost.
	batch := []string{"espresso cafe Helsinki", "cake gateau bakery"}
	matches, stats := ix.Probe(batch)
	fmt.Printf("batch probe: %d matches, %d candidates, %v filter time\n",
		len(matches), stats.Candidates, stats.FilterTime)
	for _, m := range matches {
		fmt.Printf("  %q ~ %q  sim=%.3f\n", catalog[m.S], batch[m.T], m.Similarity)
	}

	// The index is dynamic: inserts become visible to fresh snapshots
	// immediately, removed records are tombstoned, and a snapshot taken
	// before a mutation keeps serving the old catalog state.
	ids := ix.Insert([]string{"espresso coffee shop helsinki"})
	fmt.Printf("inserted record id %d\n", ids[0])
	for _, h := range ix.QueryTopK("espresso cafe helsinki", 2) {
		fmt.Printf("  top-k: id=%d sim=%.3f\n", h.Record, h.Similarity)
	}
	afterInsert := ix.Snapshot()
	ix.Remove(ids[0])
	fmt.Printf("after remove: %d hits current, %d hits on the pre-remove snapshot\n",
		len(ix.Query("espresso coffee shop helsinki")),
		len(afterInsert.Query("espresso coffee shop helsinki")))
	st := ix.Stats()
	fmt.Printf("index stats: %d live, %d inserted over lifetime, %d rebuilds\n",
		st.Live, st.Inserts, st.Rebuilds)
}
