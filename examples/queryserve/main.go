// Command queryserve demonstrates the build-once/probe-many API of the
// Section 3 filtering pipeline through the streaming v2 surface: a catalog
// is indexed once (signatures, interned pebble order, inverted index), then
// served with context-bounded single-string queries and a streaming batch
// probe — matches arrive one at a time as the parallel verify stage confirms
// them, and every request runs under a deadline (this serving layer is the
// implementation's extension beyond the paper; see ARCHITECTURE.md).
//
// The -deadline flag sets the per-request timeout; try -deadline 1ns to
// watch every query abort with context.DeadlineExceeded instead of running
// to completion.
package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"github.com/aujoin/aujoin"
)

func main() {
	deadline := flag.Duration("deadline", 2*time.Second, "per-request timeout (try 1ns to see queries abort)")
	flag.Parse()

	j := aujoin.New(
		aujoin.WithSynonym("coffee shop", "cafe", 1.0),
		aujoin.WithSynonym("st", "street", 1.0),
		aujoin.WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "espresso"),
		aujoin.WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "latte"),
	)

	catalog := []string{
		"coffee shop latte Helsingki",
		"espresso bar mannerheim street",
		"apple cake bakery",
		"national museum of finland",
	}
	ix := j.Index(catalog, aujoin.JoinOptions{Theta: 0.75, Tau: 2, Filter: aujoin.AUFilterDP})

	// Single-string lookups run under a per-request deadline; QueryOptions
	// can tighten the threshold per call without rebuilding the index.
	for _, q := range []string{"espresso cafe Helsinki", "latte bar mannerheim st", "apple pie"} {
		ctx, cancel := context.WithTimeout(context.Background(), *deadline)
		hits, err := ix.QueryCtx(ctx, q, aujoin.QueryOptions{})
		cancel()
		if err != nil {
			fmt.Printf("query %q aborted: %v\n", q, err)
			continue
		}
		fmt.Printf("query %q:\n", q)
		for _, h := range hits {
			fmt.Printf("  %.3f  %q\n", h.Similarity, catalog[h.Record])
		}
	}

	// Batch probes stream: each match is yielded the moment verification
	// confirms it, nothing is buffered, and the same deadline covers the
	// whole pipeline. Breaking out of the loop would stop the join early.
	batch := []string{"espresso cafe Helsinki", "cake gateau bakery"}
	ctx, cancel := context.WithTimeout(context.Background(), *deadline)
	streamed := 0
	for m, err := range ix.ProbeSeq(ctx, batch) {
		if err != nil {
			fmt.Printf("probe aborted after %d matches: %v\n", streamed, err)
			break
		}
		streamed++
		fmt.Printf("  streamed: %q ~ %q  sim=%.3f\n", catalog[m.S], batch[m.T], m.Similarity)
	}
	cancel()

	// The index is dynamic: inserts become visible to fresh snapshots
	// immediately, removed records are tombstoned, and a snapshot taken
	// before a mutation keeps serving the old catalog state.
	ids := ix.Insert([]string{"espresso coffee shop helsinki"})
	fmt.Printf("inserted record id %d\n", ids[0])
	ctx, cancel = context.WithTimeout(context.Background(), *deadline)
	top, err := ix.QueryTopKCtx(ctx, "espresso cafe helsinki", aujoin.QueryOptions{K: 2})
	cancel()
	if err != nil {
		fmt.Printf("top-k aborted: %v\n", err)
	}
	for _, h := range top {
		fmt.Printf("  top-k: id=%d sim=%.3f\n", h.Record, h.Similarity)
	}
	afterInsert := ix.Snapshot()
	ix.Remove(ids[0])
	fmt.Printf("after remove: %d hits current, %d hits on the pre-remove snapshot\n",
		len(ix.Query("espresso coffee shop helsinki")),
		len(afterInsert.Query("espresso coffee shop helsinki")))
	st := ix.Stats()
	fmt.Printf("index stats: %d live, %d inserted over lifetime, %d rebuilds\n",
		st.Live, st.Inserts, st.Rebuilds)
}
