// Command queryserve demonstrates the build-once/probe-many API: a catalog
// is indexed once, then served with single-string queries and batch probes
// without rebuilding signatures or the inverted index.
package main

import (
	"fmt"

	"github.com/aujoin/aujoin"
)

func main() {
	j := aujoin.New(
		aujoin.WithSynonym("coffee shop", "cafe", 1.0),
		aujoin.WithSynonym("st", "street", 1.0),
		aujoin.WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "espresso"),
		aujoin.WithTaxonomyPath("wikipedia", "food", "coffee", "coffee drinks", "latte"),
	)

	catalog := []string{
		"coffee shop latte Helsingki",
		"espresso bar mannerheim street",
		"apple cake bakery",
		"national museum of finland",
	}
	ix := j.Index(catalog, aujoin.JoinOptions{Theta: 0.75, Tau: 2, Filter: aujoin.AUFilterDP})

	// Single-string lookups reuse the prebuilt index and pooled scratch.
	for _, q := range []string{"espresso cafe Helsinki", "latte bar mannerheim st", "apple pie"} {
		fmt.Printf("query %q:\n", q)
		for _, h := range ix.Query(q) {
			fmt.Printf("  %.3f  %q\n", h.Similarity, catalog[h.Record])
		}
	}

	// Batches probe the same index; stats exclude the one-off build cost.
	batch := []string{"espresso cafe Helsinki", "cake gateau bakery"}
	matches, stats := ix.Probe(batch)
	fmt.Printf("batch probe: %d matches, %d candidates, %v filter time\n",
		len(matches), stats.Candidates, stats.FilterTime)
	for _, m := range matches {
		fmt.Printf("  %q ~ %q  sim=%.3f\n", catalog[m.S], batch[m.T], m.Similarity)
	}
}
