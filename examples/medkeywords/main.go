// Command medkeywords demonstrates a full join on a MED-style workload,
// mirroring the paper's MED dataset (Section 5.1): research-paper keyword
// strings matched against a controlled vocabulary using a medical-style
// taxonomy and alternative-name synonyms, with the Section 4 estimator
// picking the overlap constraint τ (AutoTau). It runs entirely on
// generated data so the example works offline.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/aujoin/aujoin"
	"github.com/aujoin/aujoin/internal/datagen"
)

func main() {
	// Generate a MED-like benchmark: two record collections, a taxonomy
	// and synonym rules, plus ground-truth pairs with known provenance.
	gen := datagen.New(datagen.MEDLike(400, 7))
	ds := gen.Generate()

	// Export the generated knowledge through the public API loaders, the
	// same way a real deployment would load MeSH trees and synonym lists.
	var taxBuf, synBuf bytes.Buffer
	if err := ds.Tax.Write(&taxBuf); err != nil {
		log.Fatal(err)
	}
	if err := ds.Rules.Write(&synBuf); err != nil {
		log.Fatal(err)
	}
	j, err := aujoin.NewStrict(
		aujoin.WithTaxonomyFrom(&taxBuf),
		aujoin.WithSynonymsFrom(&synBuf),
	)
	if err != nil {
		log.Fatal(err)
	}

	left := make([]string, len(ds.S))
	for i, r := range ds.S {
		left[i] = r.Raw
	}
	right := make([]string, len(ds.T))
	for i, r := range ds.T {
		right[i] = r.Raw
	}

	matches, stats := j.Join(left, right, aujoin.JoinOptions{Theta: 0.8, AutoTau: true})
	fmt.Printf("joined %d x %d keyword records at θ=0.8: %d matches (τ=%d, %v)\n",
		len(left), len(right), len(matches), stats.SuggestedTau, stats.Total())

	// How many of the known ground-truth pairs did the unified join recover?
	found := 0
	matched := map[[2]int]bool{}
	for _, m := range matches {
		matched[[2]int{m.S, m.T}] = true
	}
	for pair := range ds.Truth {
		if matched[pair] {
			found++
		}
	}
	fmt.Printf("recovered %d / %d labelled variant pairs\n", found, len(ds.Truth))
	for i, m := range matches {
		if i >= 5 {
			break
		}
		fmt.Printf("  %.3f  %q ~ %q\n", m.Similarity, left[m.S], right[m.T])
	}
}
